package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestRunContextPreCancelled verifies an already-dead context never starts
// the run.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, tinySpec(t, 40))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
}

// TestRunContextCancelMidStage cancels a run while it is parked inside a
// stage boundary (deterministically, via a faultinject callback on the first
// train stage) and asserts the run aborts with context.Canceled and releases
// every pool charge: after RunContext returns, all vista_pool_used_bytes
// gauges the run registered must read zero.
func TestRunContextCancelMidStage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	armed := make(chan struct{})
	proceed := make(chan struct{})
	// The callback policy never injects a failure; it just parks the run at
	// the train boundary until the test has cancelled the context. The next
	// boundary (or in-flight engine work) then observes the cancellation.
	faultinject.Arm("core/stage:train", faultinject.Callback(func() {
		select {
		case armed <- struct{}{}:
			<-proceed
		default: // later train stages (if any) pass straight through
		}
	}))
	defer faultinject.Disarm("core/stage:train")

	go func() {
		<-armed
		cancel()
		close(proceed)
	}()

	reg := obs.NewRegistry()
	spec := tinySpec(t, 40)
	spec.Metrics = reg
	res, err := RunContext(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}

	// The full charge must be released: a cancelled run that leaks pool
	// bytes would poison any admission accounting built on top of it.
	for _, s := range reg.Samples(func(name string) bool { return name == "vista_pool_used_bytes" }) {
		if s.Value != 0 {
			t.Errorf("pool gauge %v holds %v bytes after cancelled run", s.Labels, s.Value)
		}
	}
}

// TestRunContextDeadline verifies deadline expiry surfaces as
// context.DeadlineExceeded through the same path.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	if _, err := RunContext(ctx, tinySpec(t, 40)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want context.DeadlineExceeded", err)
	}
}
