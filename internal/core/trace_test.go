package core

import (
	"strings"
	"testing"

	"repro/internal/featurestore"
	"repro/internal/obs"
)

// TestRunTraceSpans: the run's span tree mirrors the stage breakdown and
// carries the work attributes the -trace report prints.
func TestRunTraceSpans(t *testing.T) {
	spec := tinySpec(t, 60)
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Trace == nil {
		t.Fatal("no trace on result")
	}
	if res.Trace.Name() != "run" {
		t.Fatalf("root span = %q, want run", res.Trace.Name())
	}
	if res.Trace.Duration() <= 0 {
		t.Error("root span has no duration")
	}

	children := res.Trace.Children()
	if len(children) != len(res.Timings) {
		t.Fatalf("%d stage spans vs %d timings", len(children), len(res.Timings))
	}
	for i, sp := range children {
		if sp.Name() != res.Timings[i].Label {
			t.Errorf("span %d = %q, timing label %q", i, sp.Name(), res.Timings[i].Label)
		}
		if sp.Duration() != res.Timings[i].Elapsed {
			t.Errorf("span %s duration %v != timing %v", sp.Name(), sp.Duration(), res.Timings[i].Elapsed)
		}
	}

	ingest := res.Trace.Find("ingest")
	if ingest == nil {
		t.Fatal("no ingest span")
	}
	if rows, ok := ingest.Attr("rows"); !ok || rows != int64(len(spec.StructRows)+len(spec.ImageRows)) {
		t.Errorf("ingest rows attr = %d (%v)", rows, ok)
	}
	if b, ok := ingest.Attr("bytes"); !ok || b <= 0 {
		t.Errorf("ingest bytes attr = %d (%v)", b, ok)
	}
	var inferFLOPs int64
	for _, sp := range children {
		if strings.HasPrefix(sp.Name(), "infer:") {
			f, ok := sp.Attr("flops")
			if !ok {
				t.Errorf("%s has no flops attr", sp.Name())
			}
			inferFLOPs += f
		}
	}
	if inferFLOPs <= 0 {
		t.Error("inference spans attribute no FLOPs")
	}
	if inferFLOPs > res.Counters.FLOPs {
		t.Errorf("span FLOPs %d exceed engine total %d", inferFLOPs, res.Counters.FLOPs)
	}

	var b strings.Builder
	res.Trace.Render(&b)
	out := b.String()
	for _, want := range []string{"run", "  ingest", "  join", "  infer:fc6", "  train:fc8"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
}

// TestRunMetricsRegistry: a spec-supplied registry ends up carrying engine,
// pool, and feature-store series after the run.
func TestRunMetricsRegistry(t *testing.T) {
	store, err := featurestore.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(t, 60)
	spec.FeatureStore = store
	spec.Metrics = obs.NewRegistry()

	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cache.StagesExecuted == 0 {
		t.Fatal("cold run executed no stages")
	}

	var b strings.Builder
	if err := spec.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"vista_engine_tasks_total",
		"vista_engine_flops_total",
		`vista_pool_used_bytes{node="0",pool="storage"}`,
		"vista_featurestore_puts_total",
		"vista_featurestore_used_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Warm rerun against the same registry: cache stages appear as spans and
	// the store's hit series stays live through the re-registered callbacks.
	res2, err := Run(spec)
	if err != nil {
		t.Fatalf("warm Run: %v", err)
	}
	if res2.Cache.StagesFromCache == 0 {
		t.Fatal("warm run hit no cached stages")
	}
	found := false
	res2.Trace.Walk(func(sp *obs.Span, _ int) {
		if strings.HasPrefix(sp.Name(), "cache:") {
			found = true
		}
	})
	if !found {
		t.Error("warm run trace has no cache: spans")
	}
	b.Reset()
	if err := spec.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "vista_featurestore_hits_total") {
		t.Error("scrape missing featurestore hits after warm run")
	}
}
