package core

import (
	"fmt"

	"repro/internal/cnn"
	"repro/internal/dataflow"
	"repro/internal/featurestore"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// This file connects the executor to internal/featurestore: before
// scheduling a plan, Run probes the store for every step's outputs; steps
// fully covered by materialized features are replaced with a cache attach
// (zero CNN FLOPs), and steps that do run publish their features back for
// future runs — DeepLens-style cross-run feature reuse on top of the Staged
// executor. The same probe consults the spec's in-memory FeatureSource (a
// sharing group's handoff) ahead of the durable store, and live steps fan
// their outputs into the FeatureSink, so multi-query shared inference rides
// the identical content-address machinery.

// stepCache holds the tensors one plan step would otherwise compute, fully
// loaded from the store at probe time and indexed by row ID. Loading up
// front makes the run immune to concurrent eviction from a shared store.
type stepCache struct {
	feats []map[int64]*tensor.Tensor // one map per emitted layer, in emit order
	raw   map[int64]*tensor.Tensor   // staged raw carry (nil unless KeepRaw)
	// shared marks a step served (at least partly) from the in-memory
	// FeatureSource rather than the durable store; its attach is labeled
	// "shared:<layer>" instead of "cache:<layer>".
	shared bool
}

// runCache is one run's view of materialized features: the content-address
// components shared by all of the run's keys, and which plan steps can be
// served without running inference — from the durable feature store, the
// in-memory share handoff, or both.
type runCache struct {
	store      *featurestore.Store // nil = no durable store
	source     FeatureSource       // nil = no share handoff to read
	sink       FeatureSink         // nil = no share handoff to feed
	model      string
	weightsSum string
	dataSum    string
	steps      []*stepCache // indexed by plan step; nil = execute live
	loaded     int          // durable-store entries loaded
}

// loadRunCache probes the spec's feature store and share handoff for the
// compiled plan. A step is served from cache iff every emitted layer hits
// and, when it keeps a raw carry, the carry hits too (a later stage may
// continue partial inference from it); per entry, the in-memory source wins
// over the store. Returns nil when the spec has neither store nor
// source/sink, or the model's weights cannot be realized (then no cache
// identity exists).
func loadRunCache(spec *Spec, model *cnn.Model, p *plan.Plan) *runCache {
	if spec.FeatureStore == nil && spec.FeatureSource == nil && spec.FeatureSink == nil {
		return nil
	}
	w, err := model.RealizeWeights(spec.Seed)
	if err != nil {
		return nil
	}
	rc := &runCache{
		store:      spec.FeatureStore,
		source:     spec.FeatureSource,
		sink:       spec.FeatureSink,
		model:      model.Name,
		weightsSum: cnn.WeightsChecksum(w),
		dataSum:    featurestore.DataChecksum(spec.ImageRows),
		steps:      make([]*stepCache, len(p.Steps)),
	}
	for si, step := range p.Steps {
		sc := &stepCache{feats: make([]map[int64]*tensor.Tensor, len(step.Emits))}
		ok := true
		for ei, em := range step.Emits {
			if sc.feats[ei] = rc.load(sc, em.LayerIndex, featurestore.Feature); sc.feats[ei] == nil {
				ok = false
				break
			}
		}
		if ok && step.KeepRaw {
			last := step.Emits[len(step.Emits)-1]
			if sc.raw = rc.load(sc, last.LayerIndex, featurestore.RawCarry); sc.raw == nil {
				ok = false
			}
		}
		if ok {
			rc.steps[si] = sc
		}
	}
	return rc
}

// key builds the content address for one of this run's layers.
func (rc *runCache) key(layer int, kind featurestore.EntryKind) featurestore.Key {
	return featurestore.Key{
		Model:      rc.model,
		WeightsSum: rc.weightsSum,
		DataSum:    rc.dataSum,
		LayerIndex: layer,
		Kind:       kind,
	}
}

// load fetches one entry and indexes its tensors by row ID; nil on a miss or
// a malformed entry. The in-memory source is probed first (its rows are this
// group's freshly computed tables; a hit marks the step shared), then the
// durable store.
func (rc *runCache) load(sc *stepCache, layer int, kind featurestore.EntryKind) map[int64]*tensor.Tensor {
	k := rc.key(layer, kind)
	if rc.source != nil {
		if rows, ok := rc.source.Lookup(k); ok {
			if m := indexRows(rows); m != nil {
				sc.shared = true
				return m
			}
		}
	}
	if rc.store == nil {
		return nil
	}
	rows, ok, err := rc.store.Get(k)
	if err != nil || !ok {
		return nil
	}
	m := indexRows(rows)
	if m != nil {
		rc.loaded++
	}
	return m
}

// indexRows maps one entry's rows by ID; nil when any row is malformed.
func indexRows(rows []dataflow.Row) map[int64]*tensor.Tensor {
	m := make(map[int64]*tensor.Tensor, len(rows))
	for i := range rows {
		if rows[i].Features == nil || rows[i].Features.Len() != 1 {
			return nil
		}
		m[rows[i].ID] = rows[i].Features.Get(0)
	}
	return m
}

// cached reports whether plan step i is served from materialized features.
// Safe on a nil receiver (no store or handoff configured).
func (rc *runCache) cached(i int) bool {
	return rc != nil && rc.steps[i] != nil
}

// sharedStep reports whether plan step i attaches from the in-memory share
// handoff (implies cached(i)). Safe on a nil receiver.
func (rc *runCache) sharedStep(i int) bool {
	return rc != nil && rc.steps[i] != nil && rc.steps[i].shared
}

// cachedEmits counts the selected layers served from the store — the value
// fed to optimizer.Inputs.CachedLayers so Equation 16's inputs shrink.
func (rc *runCache) cachedEmits(p *plan.Plan) int {
	if rc == nil {
		return 0
	}
	n := 0
	for i, step := range p.Steps {
		if rc.cached(i) {
			n += len(step.Emits)
		}
	}
	return n
}

// attachStep replaces one inference pass with a cache attach: each row gets
// the stored feature vectors (and raw carry) for its ID, in the same
// TensorList layout the live UDF would produce — and no CNN FLOPs. Steps
// served from a sharing group's handoff are labeled "shared:<layer>" so
// traces distinguish a leader's fan-out from a durable-store hit.
func (ex *executor) attachStep(name string, in *dataflow.Table, step plan.Step, sc *stepCache) (*dataflow.Table, error) {
	if err := ex.failStage("cache"); err != nil {
		return nil, err
	}
	label := "cache:"
	if sc.shared {
		label = "shared:"
	}
	sp := ex.stage(label + step.Emits[0].LayerName)
	defer sp.End()
	return ex.engine.MapPartitions(name, in, func(_ *dataflow.TaskContext, rows []dataflow.Row) ([]dataflow.Row, error) {
		out := make([]dataflow.Row, len(rows))
		for i := range rows {
			r := rows[i]
			features := tensor.NewTensorList()
			for _, m := range sc.feats {
				t, ok := m[r.ID]
				if !ok {
					return nil, fmt.Errorf("core: cached features lack row %d", r.ID)
				}
				features.Append(t)
			}
			if sc.raw != nil {
				t, ok := sc.raw[r.ID]
				if !ok {
					return nil, fmt.Errorf("core: cached raw carry lacks row %d", r.ID)
				}
				features.Append(t)
			}
			r.Features = features
			r.Image = nil
			out[i] = r
		}
		return out, nil
	})
}

// publishStep materializes a live step's outputs back to the store — one
// Feature entry per emitted layer, plus the raw carry for staged chains —
// and into the share handoff's sink when the run leads a sharing group.
// Best effort: a failed publish (e.g. driver memory pressure during Collect)
// never fails the run that produced the features.
func (ex *executor) publishStep(out *dataflow.Table, step plan.Step) {
	rc := ex.cache
	if rc == nil || (rc.store == nil && rc.sink == nil) {
		return
	}
	rows, err := ex.engine.Collect(out)
	if err != nil {
		return
	}
	slot := func(idx int) []dataflow.Row {
		pub := make([]dataflow.Row, len(rows))
		for i := range rows {
			if rows[i].Features == nil || rows[i].Features.Len() <= idx {
				return nil
			}
			pub[i] = dataflow.Row{ID: rows[i].ID, Features: tensor.NewTensorList(rows[i].Features.Get(idx))}
		}
		return pub
	}
	put := func(layer int, kind featurestore.EntryKind, idx int) {
		pub := slot(idx)
		if pub == nil {
			return
		}
		k := rc.key(layer, kind)
		if rc.sink != nil {
			rc.sink.Publish(k, pub)
		}
		if rc.store != nil && rc.store.Put(k, pub) == nil {
			ex.stored++
		}
	}
	for ei, em := range step.Emits {
		put(em.LayerIndex, featurestore.Feature, ei)
	}
	if step.KeepRaw {
		put(step.Emits[len(step.Emits)-1].LayerIndex, featurestore.RawCarry, len(step.Emits))
	}
}
