package core

import (
	"fmt"
	"strings"

	"repro/internal/cnn"
	"repro/internal/memory"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// Explanation describes what Vista *would* do for a spec without executing
// anything: the optimizer's decision, the compiled plan, and the
// intermediate-size analysis behind the memory choices — an EXPLAIN for
// feature-transfer workloads.
type Explanation struct {
	Decision optimizer.Decision
	Plan     *plan.Plan
	// TableSizes are the Equation 16 estimates per selected layer,
	// bottom-to-top.
	TableSizes []int64
	// SSingle and SDouble are the Equations 5–6 peaks.
	SSingle, SDouble int64
	// Infeasible is set (and Decision zero) when Algorithm 1 finds no
	// configuration; the workload needs more memory.
	Infeasible error
}

// Explain plans a spec without running it.
func Explain(spec Spec) (*Explanation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	model, err := cnn.ByName(spec.ModelName)
	if err != nil {
		return nil, err
	}
	stats, err := cnn.ComputeStats(model)
	if err != nil {
		return nil, err
	}
	compiled, err := plan.CompileFromStats(spec.PlanKind, spec.Placement, stats, spec.NumLayers,
		plan.Options{PreMaterializeBase: spec.PreMaterializeBase})
	if err != nil {
		return nil, err
	}
	in, err := optimizerInputs(spec, stats)
	if err != nil {
		return nil, err
	}
	sizes, sSingle, sDouble, err := optimizer.IntermediateSizes(in, spec.params())
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Plan: compiled, TableSizes: sizes, SSingle: sSingle, SDouble: sDouble}
	d, err := optimizer.Optimize(in, spec.params())
	if err != nil {
		ex.Infeasible = err
		return ex, nil
	}
	ex.Decision = d
	return ex, nil
}

// Render prints the explanation as a human-readable report.
func (e *Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan: %s (%d inference stage(s), %.2f GFLOPs/example)\n",
		e.Plan.Name(), len(e.Plan.Steps), float64(e.Plan.TotalInferenceFLOPs())/1e9)
	for i, l := range e.Plan.Layers {
		fmt.Fprintf(&b, "  T%d %-9s est. %s\n", i+1, l.Name, memory.FormatBytes(e.TableSizes[i]))
	}
	fmt.Fprintf(&b, "Peaks: s_single=%s s_double=%s\n",
		memory.FormatBytes(e.SSingle), memory.FormatBytes(e.SDouble))
	if e.Infeasible != nil {
		fmt.Fprintf(&b, "Decision: INFEASIBLE — %v\n", e.Infeasible)
		return b.String()
	}
	d := e.Decision
	fmt.Fprintf(&b, "Decision: cpu=%d np=%d join=%v pers=%v\n", d.CPU, d.NP, d.Join, d.Pers)
	fmt.Fprintf(&b, "Memory:   dl=%s user=%s storage=%s\n",
		memory.FormatBytes(d.MemDL), memory.FormatBytes(d.MemUser), memory.FormatBytes(d.MemStorage))
	return b.String()
}

// optimizerInputs assembles the Algorithm 1 inputs for a spec (shared by Run
// and Explain).
func optimizerInputs(spec Spec, stats *cnn.Stats) (optimizer.Inputs, error) {
	layers, err := stats.TopLayerStats(spec.NumLayers)
	if err != nil {
		return optimizer.Inputs{}, err
	}
	structDim := len(spec.StructRows[0].Structured)
	maxDim := structDim
	for _, l := range layers {
		if l.FeatureDim+structDim > maxDim {
			maxDim = l.FeatureDim + structDim
		}
	}
	in := optimizer.Inputs{
		ModelStats:    stats,
		NumLayers:     spec.NumLayers,
		NumRows:       len(spec.StructRows),
		StructDim:     structDim,
		ImageRowBytes: avgImageBytes(spec.ImageRows),
		NNodes:        spec.Nodes,
		MemSys:        spec.MemPerNode,
		MemGPU:        spec.GPUMemPerNode,
		CPUSys:        spec.CoresPerNode,
	}
	switch spec.Downstream.Kind {
	case MLP:
		in.Placement = optimizer.MInDLMemory
		in.DownstreamMemBytes = optimizer.MLPMemBytes(maxDim, spec.Downstream.MLP.Hidden)
	default:
		in.Placement = optimizer.MInPDUserMemory
		in.DownstreamMemBytes = optimizer.LogRegMemBytes(maxDim)
	}
	return in, nil
}
