package core

import (
	"strings"
	"testing"

	"repro/internal/featurestore"
	"repro/internal/memory"
)

// TestRunFeatureStoreWarmReuse drives the full cross-run caching path: a
// cold run publishes every stage's features, a warm run of the same spec
// attaches all of them — zero CNN FLOPs, identical downstream metrics, no DL
// replica memory.
func TestRunFeatureStoreWarmReuse(t *testing.T) {
	store, err := featurestore.Open(t.TempDir(), memory.MB(256))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	spec := tinySpec(t, 60)
	spec.FeatureStore = store

	cold, err := Run(spec)
	if err != nil {
		t.Fatalf("cold Run: %v", err)
	}
	nSteps := len(cold.Plan.Steps)
	if !cold.Cache.Enabled || cold.Cache.StagesExecuted != nSteps || cold.Cache.StagesFromCache != 0 {
		t.Fatalf("cold cache report: %+v", cold.Cache)
	}
	if cold.Cache.EntriesStored == 0 {
		t.Fatalf("cold run published nothing: %+v", cold.Cache)
	}

	warm, err := Run(spec)
	if err != nil {
		t.Fatalf("warm Run: %v", err)
	}
	if warm.Cache.StagesFromCache != nSteps || warm.Cache.StagesExecuted != 0 {
		t.Fatalf("warm cache report: %+v", warm.Cache)
	}
	if warm.Cache.WeightsSum != cold.Cache.WeightsSum || warm.Cache.DataSum != cold.Cache.DataSum {
		t.Fatal("content address changed between identical runs")
	}

	// Warm runs execute zero CNN FLOPs: the runs differ by exactly the
	// plan's inference cost (training FLOPs are deterministic).
	wantDelta := int64(len(spec.ImageRows)) * cold.Plan.TotalInferenceFLOPs()
	if delta := cold.Counters.FLOPs - warm.Counters.FLOPs; delta != wantDelta {
		t.Fatalf("FLOP delta %d, want exactly %d (rows × plan inference FLOPs)", delta, wantDelta)
	}

	// Cached features are byte-identical, so every metric reproduces.
	if len(warm.Layers) != len(cold.Layers) {
		t.Fatalf("layer count changed: %d vs %d", len(warm.Layers), len(cold.Layers))
	}
	for i := range warm.Layers {
		if warm.Layers[i].Train != cold.Layers[i].Train || warm.Layers[i].Test != cold.Layers[i].Test {
			t.Fatalf("layer %s metrics diverged: warm %+v/%+v cold %+v/%+v",
				warm.Layers[i].LayerName, warm.Layers[i].Train, warm.Layers[i].Test,
				cold.Layers[i].Train, cold.Layers[i].Test)
		}
	}

	// Fully-warm runs hold no CNN replicas in DL Execution Memory and time
	// "cache:" stages instead of "infer:" ones.
	if warm.Decision.MemDL != 0 {
		t.Fatalf("warm decision reserves %d bytes of DL memory", warm.Decision.MemDL)
	}
	var cacheStages, inferStages int
	for _, tm := range warm.Timings {
		switch {
		case strings.HasPrefix(tm.Label, "cache:"):
			cacheStages++
		case strings.HasPrefix(tm.Label, "infer:"):
			inferStages++
		}
	}
	if cacheStages != nSteps || inferStages != 0 {
		t.Fatalf("warm timings: %d cache / %d infer stages, want %d/0", cacheStages, inferStages, nSteps)
	}
}

// TestRunFeatureStoreKeyedByWeights asserts the content address pins the
// weights: a different realization seed must not reuse cached features.
func TestRunFeatureStoreKeyedByWeights(t *testing.T) {
	store, err := featurestore.Open(t.TempDir(), memory.MB(256))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	spec := tinySpec(t, 40)
	spec.NumLayers = 2
	spec.FeatureStore = store
	if _, err := Run(spec); err != nil {
		t.Fatalf("cold Run: %v", err)
	}

	spec.Seed = 99 // different weights
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("re-seeded Run: %v", err)
	}
	if res.Cache.StagesFromCache != 0 || res.Cache.StagesExecuted != len(res.Plan.Steps) {
		t.Fatalf("cache hit across different weights: %+v", res.Cache)
	}
}
