package core

import (
	"repro/internal/cnn"
	"repro/internal/featurestore"
	"repro/internal/plan"
)

// Fingerprint is a run's sharing identity plus the election inputs a
// coalescer needs (internal/share): two specs with equal Model, WeightsSum,
// and DataSum materialize byte-identical feature tables under the same
// content addresses, so one Staged pass to the larger NumLayers covers both.
type Fingerprint struct {
	// Model, WeightsSum, and DataSum are the featurestore.Key prefix every
	// entry of this run shares.
	Model      string
	WeightsSum string
	DataSum    string
	// NumLayers is the spec's |L|; a group's member with the largest value
	// can lead the shared pass, because feature layers are selected top-down
	// (stats.TopLayerStats): every smaller member's layer set — and its
	// Staged chain's raw-carry chain — is a subset of the leader's emits.
	NumLayers int
	// InferenceFLOPs estimates the run's total partial-inference compute
	// (plan FLOPs per image × image rows): what a follower saves by
	// attaching instead of executing.
	InferenceFLOPs int64
}

// ShareFingerprint computes spec's sharing identity. ok is false when the
// run cannot safely share an inference pass: non-Staged plans (Eager/Lazy
// emit different step structures) and pre-materialized-base variants (the
// premat pass's outputs are not published under step content addresses)
// execute solo, as do specs that fail validation or weight realization.
func ShareFingerprint(spec Spec) (fp Fingerprint, ok bool) {
	if spec.PlanKind != plan.Staged || spec.PreMaterializeBase {
		return Fingerprint{}, false
	}
	if err := spec.Validate(); err != nil {
		return Fingerprint{}, false
	}
	model, err := cnn.ByName(spec.ModelName)
	if err != nil {
		return Fingerprint{}, false
	}
	stats, err := cnn.ComputeStats(model)
	if err != nil {
		return Fingerprint{}, false
	}
	compiled, err := plan.CompileFromStats(spec.PlanKind, spec.Placement, stats, spec.NumLayers, plan.Options{})
	if err != nil {
		return Fingerprint{}, false
	}
	w, err := model.RealizeWeights(spec.Seed)
	if err != nil {
		return Fingerprint{}, false
	}
	return Fingerprint{
		Model:          model.Name,
		WeightsSum:     cnn.WeightsChecksum(w),
		DataSum:        featurestore.DataChecksum(spec.ImageRows),
		NumLayers:      spec.NumLayers,
		InferenceFLOPs: compiled.TotalInferenceFLOPs() * int64(len(spec.ImageRows)),
	}, true
}
