package core

import (
	"strings"
	"testing"

	"repro/internal/memory"
)

func TestExplainMatchesRun(t *testing.T) {
	spec := tinySpec(t, 60)
	ex, err := Explain(spec)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Infeasible != nil {
		t.Fatalf("unexpectedly infeasible: %v", ex.Infeasible)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ex.Decision != res.Decision {
		t.Errorf("Explain decision %+v differs from Run's %+v", ex.Decision, res.Decision)
	}
	if ex.Plan.Name() != res.Plan.Name() || len(ex.Plan.Steps) != len(res.Plan.Steps) {
		t.Error("Explain plan differs from Run's")
	}
	if len(ex.TableSizes) != spec.NumLayers {
		t.Errorf("table sizes = %d, want %d", len(ex.TableSizes), spec.NumLayers)
	}
	if ex.SSingle <= 0 || ex.SDouble <= 0 {
		t.Error("peak sizes missing")
	}
	out := ex.Render()
	for _, want := range []string{"Staged/AJ", "Decision:", "cpu=", "s_single"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestExplainInfeasible(t *testing.T) {
	spec := tinySpec(t, 60)
	spec.ModelName = "tiny-vgg16"
	spec.MemPerNode = memory.MB(8) // smaller than OS reservation
	ex, err := Explain(spec)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Infeasible == nil {
		t.Fatal("8 MB node reported feasible")
	}
	if !strings.Contains(ex.Render(), "INFEASIBLE") {
		t.Error("render should flag infeasibility")
	}
}

func TestExplainValidatesSpec(t *testing.T) {
	spec := tinySpec(t, 10)
	spec.ModelName = "nope"
	if _, err := Explain(spec); err == nil {
		t.Error("invalid spec accepted")
	}
}
