package core

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cnn"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// tinySpec builds a small end-to-end spec over generated data and the
// executable tiny-alexnet.
func tinySpec(t *testing.T, rows int) Spec {
	t.Helper()
	spec := data.Foods().WithRows(rows)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Nodes:        2,
		CoresPerNode: 4,
		MemPerNode:   memory.GB(32),
		SystemKind:   memory.SparkLike,
		ModelName:    "tiny-alexnet",
		NumLayers:    3, // fc6, fc7, fc8
		Downstream:   DefaultDownstream(),
		StructRows:   structRows,
		ImageRows:    imageRows,
		Seed:         7,
		PlanKind:     plan.Staged,
		Placement:    plan.AfterJoin,
		SpillDir:     t.TempDir(),
	}
}

func TestRunEndToEndStagedAJ(t *testing.T) {
	spec := tinySpec(t, 80)
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Layers) != 3 {
		t.Fatalf("got %d layer results, want 3", len(res.Layers))
	}
	wantNames := []string{"fc6", "fc7", "fc8"}
	for i, lr := range res.Layers {
		if lr.LayerName != wantNames[i] {
			t.Errorf("layer %d = %s, want %s", i, lr.LayerName, wantNames[i])
		}
		if lr.Model == nil {
			t.Errorf("layer %s has no trained model", lr.LayerName)
		}
		if lr.Train.N == 0 || lr.Test.N == 0 {
			t.Errorf("layer %s has empty metrics: train %d test %d", lr.LayerName, lr.Train.N, lr.Test.N)
		}
		if lr.FeatureDim <= 0 {
			t.Errorf("layer %s feature dim = %d", lr.LayerName, lr.FeatureDim)
		}
	}
	if res.Counters.FLOPs <= 0 || res.Counters.TasksRun <= 0 {
		t.Error("run produced no instrumentation")
	}
	if res.Decision.CPU <= 0 || res.Decision.NP <= 0 {
		t.Errorf("optimizer decision missing: %+v", res.Decision)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	// The timing breakdown covers ingest, join, one inference pass per
	// stage, and one training per layer.
	labels := map[string]int{}
	for _, tm := range res.Timings {
		if tm.Elapsed < 0 {
			t.Errorf("negative timing for %s", tm.Label)
		}
		switch {
		case tm.Label == "ingest" || tm.Label == "join":
			labels[tm.Label]++
		case strings.HasPrefix(tm.Label, "infer:"):
			labels["infer"]++
		case strings.HasPrefix(tm.Label, "train:"):
			labels["train"]++
		}
	}
	if labels["ingest"] != 1 || labels["join"] != 1 {
		t.Errorf("timings missing ingest/join: %v", labels)
	}
	if labels["infer"] != 3 || labels["train"] != 3 {
		t.Errorf("timings = %v, want 3 infer + 3 train", labels)
	}
	if res.TimingFor("train:") <= 0 {
		t.Error("TimingFor(train:) empty")
	}
}

func TestAllPlansYieldIdenticalModels(t *testing.T) {
	// Section 5.2: "All approaches in Figure 6 (including Vista) yield
	// identical downstream models (and thus, same accuracy) for a given CNN
	// layer." Full-batch GD is deterministic, so F1 must match exactly
	// across every logical plan and join placement.
	spec := tinySpec(t, 60)
	spec.NumLayers = 2

	type combo struct {
		kind      plan.Kind
		placement plan.JoinPlacement
	}
	combos := []combo{
		{plan.Lazy, plan.BeforeJoin},
		{plan.Lazy, plan.AfterJoin},
		{plan.Eager, plan.BeforeJoin},
		{plan.Eager, plan.AfterJoin},
		{plan.Staged, plan.AfterJoin},
		{plan.Staged, plan.BeforeJoin},
	}
	var baseline []float64
	for _, c := range combos {
		s := spec
		s.PlanKind = c.kind
		s.Placement = c.placement
		s.SpillDir = t.TempDir()
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.kind, c.placement, err)
		}
		if len(res.Layers) != 2 {
			t.Fatalf("%v/%v: %d layers", c.kind, c.placement, len(res.Layers))
		}
		var f1s []float64
		for _, lr := range res.Layers {
			f1s = append(f1s, lr.Test.F1, lr.Train.F1)
		}
		if baseline == nil {
			baseline = f1s
			continue
		}
		for i := range f1s {
			if math.Abs(f1s[i]-baseline[i]) > 1e-9 {
				t.Errorf("%v/%v: metric %d = %.6f differs from baseline %.6f",
					c.kind, c.placement, i, f1s[i], baseline[i])
			}
		}
	}
}

func TestRunPreMaterializedBase(t *testing.T) {
	for _, placement := range []plan.JoinPlacement{plan.AfterJoin, plan.BeforeJoin} {
		spec := tinySpec(t, 60)
		spec.NumLayers = 4 // conv5 + fc6..fc8
		spec.PreMaterializeBase = true
		spec.Placement = placement
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%v: Run: %v", placement, err)
		}
		if len(res.Layers) != 4 {
			t.Fatalf("%v: got %d layers, want 4 (base conv5 + 3)", placement, len(res.Layers))
		}
		if res.Layers[0].LayerName != "conv5" {
			t.Errorf("%v: first result = %s, want conv5 (the pre-materialized base)",
				placement, res.Layers[0].LayerName)
		}
	}
}

func TestRunCustomParams(t *testing.T) {
	spec := tinySpec(t, 40)
	spec.NumLayers = 1
	params := optimizer.DefaultParams()
	params.CPUMax = 3 // cap parallelism below the default
	spec.Params = &params
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Decision.CPU > 2 {
		t.Errorf("cpu = %d, want <= CPUMax-1 = 2", res.Decision.CPU)
	}
}

func TestRunDAGModelTinyDenseNet(t *testing.T) {
	// The full pipeline — optimizer, staged plan, partial inference,
	// training — must work unchanged for a DAG-structured CNN
	// (the paper's Section 5.4 extension).
	spec := tinySpec(t, 60)
	spec.ModelName = "tiny-densenet"
	spec.NumLayers = 3
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantNames := []string{"dense1", "dense2", "gap"}
	if len(res.Layers) != 3 {
		t.Fatalf("got %d layers", len(res.Layers))
	}
	for i, lr := range res.Layers {
		if lr.LayerName != wantNames[i] {
			t.Errorf("layer %d = %s, want %s", i, lr.LayerName, wantNames[i])
		}
		if lr.Test.N == 0 {
			t.Errorf("layer %s has no test metrics", lr.LayerName)
		}
	}
}

func TestRunWithRealImageFiles(t *testing.T) {
	// Real PNG files on disk flow through the whole pipeline: directory
	// ingest → resize → inference → training.
	dir := t.TempDir()
	const n = 60
	rng := rand.New(rand.NewSource(31))
	structRows := make([]dataflow.Row, n)
	for i := 0; i < n; i++ {
		label := float32(i % 2)
		// Label-correlated color: class 1 images lean red, class 0 blue.
		img := image.NewRGBA(image.Rect(0, 0, 20, 20))
		for y := 0; y < 20; y++ {
			for x := 0; x < 20; x++ {
				noise := uint8(rng.Intn(60))
				if label == 1 {
					img.Set(x, y, color.RGBA{R: 180 + noise/2, G: noise, B: noise, A: 255})
				} else {
					img.Set(x, y, color.RGBA{R: noise, G: noise, B: 180 + noise/2, A: 255})
				}
			}
		}
		var buf bytes.Buffer
		if err := png.Encode(&buf, img); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%d.png", i)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		structRows[i] = dataflow.Row{ID: int64(i), Label: label,
			Structured: []float32{rng.Float32()}}
	}
	imageRows, err := data.LoadImageDir(dir, cnn.TinyInputSize)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Spec{
		Nodes: 2, CoresPerNode: 2, MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: 1,
		Downstream: DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: 3, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("Run over real PNGs: %v", err)
	}
	// The color signal is trivially separable; CNN features must nail it.
	if f1 := res.Layers[0].Test.F1; f1 < 0.9 {
		t.Errorf("test F1 over color-separable PNGs = %.2f, want >= 0.9", f1)
	}
}

func TestRunDecisionTreeAndMLPDownstream(t *testing.T) {
	for _, kind := range []DownstreamKind{DecisionTree, MLP} {
		spec := tinySpec(t, 60)
		spec.NumLayers = 1
		spec.Downstream.Kind = kind
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(res.Layers) != 1 || res.Layers[0].Model == nil {
			t.Fatalf("%v: missing trained model", kind)
		}
	}
}

func TestRunBaselineConfigCanCrash(t *testing.T) {
	// A forced naive decision with no DL execution memory reproduces the
	// baseline crash behavior end-to-end.
	spec := tinySpec(t, 40)
	spec.Decision = &optimizer.Decision{
		CPU: 4, NP: 8,
		MemDL:      1024, // far below 4 replicas of tiny-alexnet
		MemUser:    memory.MB(64),
		MemStorage: memory.MB(64),
		Join:       dataflow.ShuffleJoin,
		Pers:       dataflow.Deserialized,
	}
	_, err := Run(spec)
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("expected OOM crash, got %v", err)
	}
	if oom.Scenario != memory.DLBlowup {
		t.Errorf("scenario = %v, want dl-execution-blowup", oom.Scenario)
	}
}

func TestRunIgniteStorageCrash(t *testing.T) {
	spec := tinySpec(t, 80)
	spec.SystemKind = memory.IgniteLike
	spec.Decision = &optimizer.Decision{
		CPU: 2, NP: 4,
		MemDL:      memory.MB(64),
		MemUser:    memory.MB(64),
		MemStorage: memory.MB(1), // cannot hold the tables, and no spill
		Join:       dataflow.ShuffleJoin,
		Pers:       dataflow.Deserialized,
	}
	_, err := Run(spec)
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("expected storage crash, got %v", err)
	}
	if oom.Scenario != memory.StorageExhausted {
		t.Errorf("scenario = %v, want storage-exhausted", oom.Scenario)
	}
}

func TestRunSparkSpillsInsteadOfCrashing(t *testing.T) {
	spec := tinySpec(t, 80)
	spec.Decision = &optimizer.Decision{
		CPU: 2, NP: 4,
		MemDL:      memory.MB(64),
		MemUser:    memory.MB(64),
		MemStorage: memory.MB(1),
		Join:       dataflow.ShuffleJoin,
		Pers:       dataflow.Deserialized,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Spark-like run should spill, not crash: %v", err)
	}
	if res.Counters.BytesSpilled <= 0 {
		t.Error("expected spills under storage pressure")
	}
}

func TestSpecValidate(t *testing.T) {
	good := tinySpec(t, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Nodes = 0 },
		func(s *Spec) { s.CoresPerNode = 0 },
		func(s *Spec) { s.MemPerNode = 0 },
		func(s *Spec) { s.NumLayers = 0 },
		func(s *Spec) { s.StructRows = nil },
		func(s *Spec) { s.ImageRows = s.ImageRows[:5] },
		func(s *Spec) { s.ModelName = "nope" },
	}
	for i, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestDownstreamKindString(t *testing.T) {
	if LogisticRegression.String() != "logistic-regression" ||
		DecisionTree.String() != "decision-tree" || MLP.String() != "mlp" {
		t.Error("downstream kind names wrong")
	}
}

func TestRunNoTestSplit(t *testing.T) {
	spec := tinySpec(t, 40)
	spec.NumLayers = 1
	spec.Downstream.TestFraction = 0
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layers[0].Test.N != 0 {
		t.Error("test metrics present despite TestFraction = 0")
	}
	if res.Layers[0].Train.N == 0 {
		t.Error("train metrics missing")
	}
}

// TestRunSampledSeries: with Metrics and SampleEvery set, the run records a
// time series with stage markers matching the trace's stages.
func TestRunSampledSeries(t *testing.T) {
	spec := tinySpec(t, 80)
	spec.Metrics = obs.NewRegistry()
	spec.SampleEvery = time.Millisecond
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec := res.Series
	if rec == nil {
		t.Fatal("Result.Series is nil despite SampleEvery")
	}
	if len(rec.Frames) < 2 {
		t.Fatalf("recorded %d frames, want >= 2 (initial + final)", len(rec.Frames))
	}
	if rec.Every != time.Millisecond {
		t.Errorf("recording period = %v, want 1ms", rec.Every)
	}
	for i := 1; i < len(rec.Frames); i++ {
		if rec.Frames[i].T.Before(rec.Frames[i-1].T) {
			t.Fatalf("frames out of time order at %d", i)
		}
	}
	// Engine series were sampled.
	var sawEngine bool
	for _, key := range rec.SeriesKeys() {
		if strings.HasPrefix(key, "vista_engine_") || strings.HasPrefix(key, "vista_pool_") {
			sawEngine = true
			break
		}
	}
	if !sawEngine {
		t.Errorf("no engine/pool series sampled; keys = %v", rec.SeriesKeys())
	}
	// Every non-empty stage marker names a real top-level stage.
	stages := make(map[string]bool)
	for _, sp := range res.Trace.Children() {
		stages[sp.Name()] = true
	}
	for _, f := range rec.Frames {
		if f.Stage != "" && !stages[f.Stage] {
			t.Errorf("frame stage %q is not a trace stage", f.Stage)
		}
	}

	// Without SampleEvery the run records nothing.
	spec2 := tinySpec(t, 80)
	spec2.Metrics = obs.NewRegistry()
	res2, err := Run(spec2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res2.Series != nil {
		t.Error("Series recorded without SampleEvery")
	}
}
