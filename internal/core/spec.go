// Package core implements Vista itself: the declarative feature-transfer API
// of Section 3.3. A Spec says *what* to run — the system environment, the
// roster CNN f and the number of feature layers |L| to explore, the
// downstream ML routine M, and the data tables with their statistics — and
// Run decides *how*: it invokes the optimizer (Section 4.3) for the logical
// plan's configuration, provisions the dataflow engine and DL session,
// executes the Staged plan (or an explicitly requested alternative, for
// experiments), and trains M on every selected layer.
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cnn"
	"repro/internal/dataflow"
	"repro/internal/featurestore"
	"repro/internal/memory"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/obs/sampler"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// DownstreamKind selects the downstream model M.
type DownstreamKind int

// Downstream model kinds.
const (
	// LogisticRegression is the paper's primary M (MLlib-style,
	// distributed full-batch gradient descent).
	LogisticRegression DownstreamKind = iota
	// DecisionTree is the CART alternative of Section 5.2.
	DecisionTree
	// MLP is the neural downstream model of the TFT+Beam comparison.
	MLP
)

// String implements fmt.Stringer.
func (k DownstreamKind) String() string {
	switch k {
	case LogisticRegression:
		return "logistic-regression"
	case DecisionTree:
		return "decision-tree"
	case MLP:
		return "mlp"
	}
	return fmt.Sprintf("downstream(%d)", int(k))
}

// DownstreamSpec configures M.
type DownstreamSpec struct {
	Kind   DownstreamKind
	LogReg ml.LogRegConfig
	Tree   ml.TreeConfig
	MLP    ml.MLPConfig
	// TestFraction, when positive, holds out that fraction of rows (by ID
	// hash) for evaluation; metrics are reported on both splits.
	TestFraction float64
}

// DefaultDownstream returns the paper's Section 5 settings: logistic
// regression, 10 iterations, elastic net α = 0.5, λ = 0.01, 20% test split.
func DefaultDownstream() DownstreamSpec {
	return DownstreamSpec{
		Kind:         LogisticRegression,
		LogReg:       ml.DefaultLogRegConfig(),
		Tree:         ml.DefaultTreeConfig(),
		MLP:          ml.DefaultMLPConfig(),
		TestFraction: 0.2,
	}
}

// Spec is Vista's declarative input (Figure 13 / Section 3.3's four input
// groups).
type Spec struct {
	// — Group 1: system environment —
	Nodes        int
	CoresPerNode int
	MemPerNode   int64
	// GPUMemPerNode is per-worker accelerator memory (0 = CPU only).
	GPUMemPerNode int64
	// SystemKind selects Spark-like or Ignite-like PD semantics.
	SystemKind memory.SystemKind

	// — Group 2: CNN and layers —
	// ModelName is a roster name; real execution requires an executable
	// (Tiny*) model.
	ModelName string
	// NumLayers is |L|, counted from the top-most feature layer.
	NumLayers int

	// — Group 3: downstream ML routine —
	Downstream DownstreamSpec

	// — Group 4: data and statistics —
	StructRows []dataflow.Row
	ImageRows  []dataflow.Row

	// Seed drives CNN weight realization.
	Seed int64

	// FeatureStore, when non-nil, enables cross-run feature reuse: Run
	// consults the store before scheduling partial-inference stages (a fully
	// covered stage is attached from cache instead of computed) and
	// publishes features it does compute back under the run's content
	// address (model, weight checksum, image-content checksum, layer).
	FeatureStore *featurestore.Store

	// FeatureSource, when non-nil, is probed before the durable FeatureStore
	// for each plan step's outputs — the in-memory fast path of multi-query
	// shared inference (internal/share): a sharing follower carries its
	// group's handoff here and attaches the leader's feature tables without
	// opening a DL session. Stages served from the source are labeled
	// "shared:<layer>" in the trace and counted in CacheReport.StagesShared.
	FeatureSource FeatureSource

	// FeatureSink, when non-nil, receives every materialized table a live
	// inference step produces (same content addresses the FeatureStore would
	// use). A sharing leader carries its group's handoff here so followers
	// attach directly from memory; the durable store, when also configured,
	// is written independently.
	FeatureSink FeatureSink

	// Metrics, when non-nil, receives the run's live instrumentation: the
	// engine registers its counters and per-node pool gauges (and the
	// feature store its hit/miss/byte series) into this registry, so an HTTP
	// scrape observes the run in flight. A long-lived registry may be reused
	// across runs; each run's engine takes over the engine series.
	Metrics *obs.Registry

	// SampleEvery, when positive (and Metrics is set), runs a time-series
	// sampler for the duration of the run: every period it snapshots the
	// engine/pool/feature-store series into an in-memory ring, tagging each
	// frame with the stage open at that instant. The recording lands on
	// Result.Series, ready for the export writers (CSV/JSON time series,
	// Chrome trace counter tracks) and sim.CompareSeries.
	SampleEvery time.Duration

	// — Experiment overrides (default zero values = Vista's choices) —
	// PlanKind/Placement force a logical plan; Vista's default is
	// Staged/AJ (Section 4.2.1: "it suffices for Vista to only use our new
	// Staged plan"; Section 5.3 validates Staged/AJ).
	PlanKind  plan.Kind
	Placement plan.JoinPlacement
	// PreMaterializeBase enables the Appendix B variant.
	PreMaterializeBase bool
	// Decision, when non-nil, bypasses the optimizer (baseline configs).
	Decision *optimizer.Decision
	// Params, when non-nil, overrides the Table 1(C) fixed-but-adjustable
	// system parameters (OS reservation, Core Memory, partition caps, α).
	Params *optimizer.Params
	// CostScales applies a fitted calibration profile's per-stage-kind
	// corrections (calib.Profile.CostScales) to plan choice and pricing.
	// The zero value is the identity — the paper constants unchanged. When
	// both Params and CostScales are set, CostScales wins over
	// Params.Scales.
	CostScales optimizer.CostScales
	// SpillDir overrides the engine's spill directory (tests).
	SpillDir string
}

// FeatureSource serves materialized feature tables by content address — the
// read side of an in-memory handoff between runs sharing one inference pass
// (implemented by share.Handoff). Lookup must return rows the caller may own
// outright (deep copies), since each run's engine mutates its tables.
type FeatureSource interface {
	Lookup(k featurestore.Key) (rows []dataflow.Row, ok bool)
}

// FeatureSink receives materialized feature tables by content address — the
// write side of the handoff (implemented by share.Handoff). Publish takes
// ownership of rows; the executor never mutates them afterwards.
type FeatureSink interface {
	Publish(k featurestore.Key, rows []dataflow.Row)
}

// params returns the effective Table 1(C) parameters, with the spec's
// calibration scales folded in.
func (s *Spec) params() optimizer.Params {
	p := optimizer.DefaultParams()
	if s.Params != nil {
		p = *s.Params
	}
	if !s.CostScales.IsIdentity() {
		p.Scales = s.CostScales
	}
	return p
}

// Validate checks the spec before execution.
func (s *Spec) Validate() error {
	switch {
	case s.Nodes <= 0 || s.CoresPerNode <= 0:
		return fmt.Errorf("core: need positive nodes/cores, got %d/%d", s.Nodes, s.CoresPerNode)
	case s.MemPerNode <= 0:
		return fmt.Errorf("core: need positive worker memory")
	case s.NumLayers <= 0:
		return fmt.Errorf("core: need at least one feature layer")
	case len(s.StructRows) == 0 || len(s.ImageRows) == 0:
		return fmt.Errorf("core: both Tstr and Timg must be non-empty")
	case len(s.StructRows) != len(s.ImageRows):
		return fmt.Errorf("core: Tstr has %d rows, Timg has %d", len(s.StructRows), len(s.ImageRows))
	}
	if _, err := cnn.ByName(s.ModelName); err != nil {
		return err
	}
	return nil
}

// LayerResult is one trained downstream model with its evaluation.
type LayerResult struct {
	// LayerName is the feature layer's roster label.
	LayerName string
	// FeatureDim is the flattened feature-vector length.
	FeatureDim int
	// Model is the trained downstream model.
	Model ml.Model
	// Train and Test are metrics on the respective splits (Test.N == 0
	// when TestFraction is 0).
	Train, Test ml.Metrics
}

// StageTiming is one timed phase of a run — the real-engine analogue of the
// paper's Table 3 breakdown. It is derived from the run's span tree
// (Result.Trace): one entry per top-level stage span, in execution order.
type StageTiming struct {
	// Label identifies the phase: "ingest", "join", "infer:<layer>",
	// "train:<layer>", "premat:<layer>", "cache:<layer>" (a stage served
	// from the feature store), or "shared:<layer>" (a stage attached from a
	// sharing group's in-memory handoff).
	Label   string
	Elapsed time.Duration
}

// CacheReport summarizes a run's interaction with the feature store.
type CacheReport struct {
	// Enabled is true when the spec carried a feature store and/or a share
	// handoff (FeatureSource/FeatureSink), i.e. cross-run reuse was possible.
	Enabled bool `json:"enabled"`
	// StagesFromCache and StagesExecuted split the plan's inference stages
	// into those attached from materialized features and those run live.
	StagesFromCache int `json:"stages_from_cache"`
	StagesExecuted  int `json:"stages_executed"`
	// StagesShared counts stages attached from an in-memory FeatureSource (a
	// sharing group's handoff) rather than the durable store; such stages are
	// not included in StagesFromCache.
	StagesShared int `json:"stages_shared"`
	// EntriesLoaded and EntriesStored count store entries read and written.
	EntriesLoaded int `json:"entries_loaded"`
	EntriesStored int `json:"entries_stored"`
	// WeightsSum and DataSum are the run's content-address components,
	// reusable to probe the store for this workload (e.g. by the server's
	// /simulate path).
	WeightsSum string `json:"weights_sum,omitempty"`
	DataSum    string `json:"data_sum,omitempty"`
}

// Result is the output of one feature-transfer run: |L| trained models, the
// configuration Vista chose, and the run's instrumentation.
type Result struct {
	Decision optimizer.Decision
	Plan     *plan.Plan
	Layers   []LayerResult
	Counters dataflow.Snapshot
	Elapsed  time.Duration
	// Trace is the run's span tree: a root "run" span with one child per
	// stage, each carrying row/byte/FLOP attributes. Render it for the
	// -trace report, or feed it to sim.CompareTrace to line measured stage
	// times up against the simulator's estimates.
	Trace *obs.Span
	// Timings is the per-phase breakdown, in execution order (derived from
	// Trace's top-level children).
	Timings []StageTiming
	// Series is the run's sampled time series (nil unless Spec.SampleEvery
	// and Spec.Metrics were set): per-period frames of engine counters, pool
	// gauges, and feature-store series with live stage markers. Feed it to
	// export.WriteTimeseriesCSV/JSON, export.WriteChromeTrace (counter
	// tracks), or sim.CompareSeries.
	Series *sampler.Recording
	// Cache reports feature-store usage (zero value when no store).
	Cache CacheReport
}

// TimingFor sums the elapsed time of all phases whose label has the given
// prefix (e.g. "train:" for all downstream training).
func (r *Result) TimingFor(prefix string) time.Duration {
	var total time.Duration
	for _, t := range r.Timings {
		if strings.HasPrefix(t.Label, prefix) {
			total += t.Elapsed
		}
	}
	return total
}
