package workload

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// scriptedDoer answers requests from a fixed response script (cycled) for
// POST /run and a canned Prometheus exposition for GET /metrics, so driver
// tests exercise the full pacing/classification path with no sockets.
type scriptedDoer struct {
	mu      sync.Mutex
	script  []scriptResp
	i       int
	calls   atomic.Int64
	scrapes atomic.Int64
	// block, when non-nil, parks every /run request until the channel
	// closes — for exercising the in-flight cap.
	block chan struct{}
}

type scriptResp struct {
	code       int
	retryAfter string
}

func (s *scriptedDoer) Do(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodGet {
		s.scrapes.Add(1)
		return textResponse(200, "vista_admission_queue_depth 3\nvista_admission_admitted_total 17\n"), nil
	}
	s.calls.Add(1)
	if s.block != nil {
		select {
		case <-s.block:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	s.mu.Lock()
	r := s.script[s.i%len(s.script)]
	s.i++
	s.mu.Unlock()
	resp := textResponse(r.code, "{}")
	if r.retryAfter != "" {
		resp.Header.Set("Retry-After", r.retryAfter)
	}
	return resp, nil
}

func textResponse(code int, body string) *http.Response {
	return &http.Response{
		StatusCode: code,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

// stepLoop hands the driver's pacing loop exactly n steps, one at a time:
// advance one quantum, then wait for the loop to consume it.
func stepLoop(t *testing.T, d *atomic.Int64, fc *clock.Fake, n int) {
	t.Helper()
	base := d.Load()
	for i := 0; i < n; i++ {
		fc.Advance(wallStep)
		for d.Load() < base+int64(i)+1 {
			runtime.Gosched()
		}
	}
}

type runOut struct {
	res *Result
	err error
}

// runInstrumented is Run with the pacing-step counter swapped for the
// test's, so fake-clock tests can hand the loop one step at a time.
func runInstrumented(cfg Config, ticks *atomic.Int64) (*Result, error) {
	d, err := newDriver(cfg)
	if err != nil {
		return nil, err
	}
	d.loopTicks = ticks
	return d.run(context.Background())
}

func TestOpenLoopDeterministicSchedule(t *testing.T) {
	fc := clock.NewFake()
	doer := &scriptedDoer{script: []scriptResp{{code: 200}}}
	ticks := new(atomic.Int64)
	out := make(chan runOut, 1)
	go func() {
		res, err := runInstrumented(Config{
			BaseURL:  "http://stub",
			Pattern:  mustParse(t, "const(100)"),
			Duration: time.Second,
			Tick:     250 * time.Millisecond,
			Client:   doer,
			Clock:    fc,
		}, ticks)
		out <- runOut{res, err}
	}()
	fc.BlockUntil(1) // pacing ticker armed

	// const(100) at 10ms steps accrues exactly 1 launch per step; the step
	// landing on sim t=1s ends the run instead of launching.
	stepLoop(t, ticks, fc, 99)
	fc.Advance(wallStep)
	r := <-out
	if r.err != nil {
		t.Fatalf("Run: %v", r.err)
	}
	res := r.res
	if res.Offered != 99 {
		t.Errorf("offered = %d, want exactly 99 (deterministic accumulator)", res.Offered)
	}
	if res.Counts[ClassOK] != 99 {
		t.Errorf("ok = %d, want 99 (stub always answers 200)", res.Counts[ClassOK])
	}
	if errs := res.Verify(Checks{}); len(errs) != 0 {
		t.Errorf("clean run violated invariants: %v", errs)
	}
	if len(res.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4 (1s / 250ms)", len(res.Buckets))
	}
	// Launches are recorded in the bucket of their launch instant; with a
	// constant rate each quarter gets a quarter of the offers (the first
	// tick of each later bucket lands exactly on the boundary).
	for i, b := range res.Buckets {
		if b.Offered < 24 || b.Offered > 26 {
			t.Errorf("bucket %d offered = %d, want ~25", i, b.Offered)
		}
		if b.TargetRate != 100 {
			t.Errorf("bucket %d target rate = %v, want 100", i, b.TargetRate)
		}
	}
}

func TestOpenLoopClassifiesAndCollectsRetryAfter(t *testing.T) {
	fc := clock.NewFake()
	doer := &scriptedDoer{script: []scriptResp{
		{code: 200},
		{code: 429, retryAfter: "7"},
		{code: 503},
		{code: 429, retryAfter: "3"},
		{code: 418},
	}}
	ticks := new(atomic.Int64)
	out := make(chan runOut, 1)
	go func() {
		res, err := runInstrumented(Config{
			BaseURL:  "http://stub",
			Pattern:  mustParse(t, "const(100)"),
			Duration: 500 * time.Millisecond,
			Client:   doer,
			Clock:    fc,
		}, ticks)
		out <- runOut{res, err}
	}()
	fc.BlockUntil(1)
	stepLoop(t, ticks, fc, 49)
	fc.Advance(wallStep)
	r := <-out
	if r.err != nil {
		t.Fatalf("Run: %v", r.err)
	}
	res := r.res
	// 49 launches cycle the 5-entry script: 10,10,10,10,9.
	want := map[Class]int{ClassOK: 10, ClassThrottled: 20, ClassOverload: 10, ClassOther: 9}
	for class, n := range want {
		if res.Counts[class] != n {
			t.Errorf("%v = %d, want %d", class, res.Counts[class], n)
		}
	}
	if res.RetryAfter["7"] != 10 || res.RetryAfter["3"] != 10 || len(res.RetryAfter) != 2 {
		t.Errorf("RetryAfter = %v, want {7:10, 3:10}", res.RetryAfter)
	}
	if errs := res.Verify(Checks{MinDistinctRetryAfter: 2}); len(errs) == 0 {
		t.Error("Verify passed despite 9 out-of-contract 418s")
	}
}

func TestOpenLoopShedsAtInFlightCap(t *testing.T) {
	fc := clock.NewFake()
	doer := &scriptedDoer{script: []scriptResp{{code: 200}}, block: make(chan struct{})}
	ticks := new(atomic.Int64)
	out := make(chan runOut, 1)
	go func() {
		res, err := runInstrumented(Config{
			BaseURL:     "http://stub",
			Pattern:     mustParse(t, "const(100)"),
			Duration:    300 * time.Millisecond,
			Client:      doer,
			Clock:       fc,
			MaxInFlight: 2,
		}, ticks)
		out <- runOut{res, err}
	}()
	fc.BlockUntil(1)
	// Launch a few requests; the first two park in the blocked doer, the
	// rest shed at the cap.
	stepLoop(t, ticks, fc, 10)
	for doer.calls.Load() < 2 {
		runtime.Gosched()
	}
	close(doer.block)
	stepLoop(t, ticks, fc, 19)
	fc.Advance(wallStep)
	r := <-out
	if r.err != nil {
		t.Fatalf("Run: %v", r.err)
	}
	res := r.res
	if res.Offered != 29 {
		t.Fatalf("offered = %d, want 29", res.Offered)
	}
	if res.Counts[ClassShed] == 0 {
		t.Error("no driver-side shed despite a 2-deep in-flight cap under a blocked server")
	}
	if got := res.Counts[ClassOK] + res.Counts[ClassShed]; got != res.Offered {
		t.Errorf("ok %d + shed %d != offered %d", res.Counts[ClassOK], res.Counts[ClassShed], res.Offered)
	}
	if errs := res.Verify(Checks{}); len(errs) == 0 {
		t.Error("Verify(MaxShed 0) passed despite shed requests")
	}
	if errs := res.Verify(Checks{MaxShed: res.Counts[ClassShed]}); len(errs) != 0 {
		t.Errorf("Verify with shed allowance still failed: %v", errs)
	}
}

func TestOpenLoopScrapesQueueDepth(t *testing.T) {
	fc := clock.NewFake()
	doer := &scriptedDoer{script: []scriptResp{{code: 200}}}
	ticks := new(atomic.Int64)
	out := make(chan runOut, 1)
	go func() {
		res, err := runInstrumented(Config{
			BaseURL:          "http://stub",
			Pattern:          mustParse(t, "const(10)"),
			Duration:         400 * time.Millisecond,
			Tick:             100 * time.Millisecond,
			Client:           doer,
			Clock:            fc,
			ScrapeQueueDepth: true,
		}, ticks)
		out <- runOut{res, err}
	}()
	fc.BlockUntil(1)
	stepLoop(t, ticks, fc, 39)
	fc.Advance(wallStep)
	r := <-out
	if r.err != nil {
		t.Fatalf("Run: %v", r.err)
	}
	res := r.res
	// Buckets 0..2 get a boundary scrape when the loop crosses into the
	// next bucket; the final bucket has no successor boundary inside the run.
	for i := 0; i < 3; i++ {
		if res.Buckets[i].QueueDepth != 3 {
			t.Errorf("bucket %d queue depth = %v, want 3 (scraped)", i, res.Buckets[i].QueueDepth)
		}
	}
	if res.Buckets[3].QueueDepth != -1 {
		t.Errorf("final bucket queue depth = %v, want -1 (never scraped)", res.Buckets[3].QueueDepth)
	}
	if doer.scrapes.Load() != 3 {
		t.Errorf("scrapes = %d, want 3 (one per interior boundary)", doer.scrapes.Load())
	}
}

// TestClosedLoopHonorsRetryAfter is the client half of the herd fix: a
// closed-loop worker that receives a 429 must stay away for the hinted
// backoff. The stub always throttles with a hint longer than the whole run,
// so each worker attempts exactly once — a client that ignored Retry-After
// would hammer the server hundreds of times in the same window.
func TestClosedLoopHonorsRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:   srv.URL,
		Body:      "{}",
		Pattern:   mustParse(t, "const(3)"),
		Duration:  2 * time.Second,
		TimeScale: 10, // 200ms wall
		Mode:      ClosedLoop,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Offered != 3 {
		t.Errorf("offered = %d, want exactly 3 (one per worker, then backoff)", res.Offered)
	}
	if res.Counts[ClassThrottled] != res.Offered {
		t.Errorf("throttled = %d, want %d", res.Counts[ClassThrottled], res.Offered)
	}
	if res.RetryAfter["30"] != res.Offered {
		t.Errorf("RetryAfter = %v, want all %d under key \"30\"", res.RetryAfter, res.Offered)
	}
}

// TestClosedLoopAgainstLiveServer drives a real (stub-handler) HTTP server
// end to end in closed loop and checks the books balance.
func TestClosedLoopAgainstLiveServer(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "{}")
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:   srv.URL,
		Body:      "{}",
		Pattern:   mustParse(t, "const(2)"),
		Duration:  time.Second,
		TimeScale: 5, // 200ms wall
		Mode:      ClosedLoop,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Offered == 0 {
		t.Fatal("closed loop offered nothing against a healthy server")
	}
	// Workers cancelled mid-request at run end are shed, not failed.
	if errs := res.Verify(Checks{MaxShed: res.Offered}); len(errs) != 0 {
		t.Errorf("invariants: %v", errs)
	}
	if res.Counts[ClassOK] == 0 {
		t.Error("no successes recorded")
	}
}

func TestVerifyOffPeakLatency(t *testing.T) {
	res := &Result{
		Offered: 2,
		Buckets: []Bucket{
			{Start: 0, TargetRate: 1, P50: 10 * time.Millisecond, P99: 3 * time.Second},
			{Start: time.Hour, TargetRate: 50, P99: 10 * time.Second}, // peak: exempt
		},
	}
	res.Counts[ClassOK] = 2
	errs := res.Verify(Checks{OffPeakP99: time.Second, OffPeakBelow: 5})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "off-peak") {
		t.Errorf("Verify = %v, want exactly the off-peak p99 violation", errs)
	}
}

func TestVerifyReconciliation(t *testing.T) {
	res := &Result{Offered: 5}
	res.Counts[ClassOK] = 4 // one request vanished
	errs := res.Verify(Checks{})
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "escaped classification") {
		t.Errorf("Verify = %v, want the reconciliation violation", errs)
	}
}

func TestTimelineOutputs(t *testing.T) {
	res := &Result{
		Profile: "const(5)", Duration: time.Second, TimeScale: 1, Tick: 500 * time.Millisecond,
		Offered:    10,
		RetryAfter: map[string]int{"2": 3},
		Buckets: []Bucket{
			{Start: 0, TargetRate: 5, Offered: 5, P50: 10 * time.Millisecond, P99: 20 * time.Millisecond, QueueDepth: 2},
			{Start: 500 * time.Millisecond, TargetRate: 5, Offered: 5, QueueDepth: -1},
		},
	}
	res.Counts[ClassOK] = 7
	res.Counts[ClassThrottled] = 3

	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 buckets:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "sim_offset_s,target_rate,offered,ok,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000,5.000,5,") {
		t.Errorf("first CSV row = %q", lines[1])
	}

	var js strings.Builder
	if err := res.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"profile": "const(5)"`, `"offered": 10`, `"retry_after"`, `"queue_depth": -1`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON output missing %s", want)
		}
	}
}

func TestQuantile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sample := []time.Duration{ms(5), ms(1), ms(3), ms(2), ms(4)}
	if got := quantile(sample, 0.5); got != ms(3) {
		t.Errorf("p50 = %v, want 3ms", got)
	}
	if got := quantile(sample, 0.99); got != ms(5) {
		t.Errorf("p99 = %v, want 5ms", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// quantile must not mutate its input.
	if sample[0] != ms(5) {
		t.Error("quantile sorted the caller's sample in place")
	}
}

func TestScrapeMetrics(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# HELP x y\nvista_admission_queue_depth 4\nvista_http_requests_total{code=\"200\"} 17\nmalformed\n")
	}))
	defer srv.Close()
	m, err := ScrapeMetrics(context.Background(), http.DefaultClient, srv.URL)
	if err != nil {
		t.Fatalf("ScrapeMetrics: %v", err)
	}
	if m["vista_admission_queue_depth"] != 4 {
		t.Errorf("queue depth = %v, want 4", m["vista_admission_queue_depth"])
	}
	if m[`vista_http_requests_total{code="200"}`] != 17 {
		t.Errorf("labeled series = %v, want 17", m[`vista_http_requests_total{code="200"}`])
	}
}
