package workload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Mode selects how the driver converts a Pattern into traffic.
type Mode int

const (
	// OpenLoop offers Pattern.Rate(t) requests per wall second regardless of
	// how the server responds — the arrival process of independent clients.
	// Overload shows up as 429/503 counts, not as reduced offered load.
	OpenLoop Mode = iota
	// ClosedLoop maintains ceil(Pattern.Rate(t)) concurrent clients, each
	// issuing its next request when the previous one finishes and honoring
	// 429 Retry-After as a wall-clock backoff — the well-behaved SDK client.
	// Overload shows up as reduced throughput and backoff gaps.
	ClosedLoop
)

func (m Mode) String() string {
	if m == ClosedLoop {
		return "closed"
	}
	return "open"
}

// ParseMode maps the -mode flag values onto Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "open":
		return OpenLoop, nil
	case "closed":
		return ClosedLoop, nil
	}
	return 0, fmt.Errorf("workload: unknown mode %q (want open or closed)", s)
}

// Class buckets every offered request into exactly one outcome, so the
// timeline and the exit-code invariants can reconcile offered load against
// responses with no request unaccounted for.
type Class int

const (
	// ClassOK is a 200: the run was admitted and completed.
	ClassOK Class = iota
	// ClassThrottled is a 429: the queue deadline expired; retryable.
	ClassThrottled
	// ClassOverload is a 503: queue full or oversize; shed.
	ClassOverload
	// ClassOther is any other HTTP status — never expected from a healthy
	// admission stack, so Verify treats it like a transport failure.
	ClassOther
	// ClassTimeout is a client-side per-request timeout: the server held the
	// connection past the driver's patience.
	ClassTimeout
	// ClassTransport is a connection-level failure (refused, reset, EOF).
	ClassTransport
	// ClassShed is a driver-side drop: the in-flight cap was reached (the
	// request was never sent) or the replay was interrupted mid-request.
	// Nonzero shed in an uninterrupted run means the driver, not the
	// server, was the bottleneck — its results understate offered load.
	ClassShed
	numClasses int = iota
)

var classNames = [numClasses]string{"ok", "throttled", "overload", "other", "timeout", "transport", "shed"}

func (c Class) String() string {
	if c < 0 || int(c) >= numClasses {
		return "unknown"
	}
	return classNames[c]
}

// Doer is the slice of *http.Client the driver needs; tests substitute a
// scripted fake so the pacing loop runs on a fake clock with no sockets.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// Config parameterizes one driver run.
type Config struct {
	// BaseURL is the server under test (http://host:port, no trailing slash).
	BaseURL string
	// Body is the JSON POSTed to /run for every request.
	Body string
	// Pattern is the offered-load profile (required).
	Pattern Pattern
	// Duration is the simulated span to replay (required).
	Duration time.Duration
	// TimeScale compresses simulated time: simulated seconds per wall
	// second. 1 replays in real time; 720 replays 24 h in 2 min. The profile
	// is swept faster, but instantaneous rates keep their nominal values.
	TimeScale float64
	// Tick is the timeline bucket width in simulated time (0 = Duration/60).
	Tick time.Duration
	// Mode selects open- or closed-loop traffic (default OpenLoop).
	Mode Mode
	// Client issues the requests (nil = an http.Client with RequestTimeout).
	Client Doer
	// RequestTimeout bounds one request's wall time (0 = 30s).
	RequestTimeout time.Duration
	// MaxInFlight caps concurrent requests; beyond it the driver sheds
	// locally and records ClassShed (0 = 256).
	MaxInFlight int
	// ScrapeQueueDepth samples vista_admission_queue_depth from /metrics at
	// every timeline bucket boundary.
	ScrapeQueueDepth bool
	// Clock paces the driver (nil = wall clock; tests inject a fake).
	Clock clock.Clock
}

// wallStep is the pacing quantum: the open loop accumulates fractional
// launches and the closed loop retargets concurrency once per step.
const wallStep = 10 * time.Millisecond

func (cfg *Config) defaults() error {
	if cfg.Pattern == nil {
		return errors.New("workload: Config.Pattern is required")
	}
	if cfg.Duration <= 0 {
		return errors.New("workload: Config.Duration must be positive")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.TimeScale < 1 || math.IsInf(cfg.TimeScale, 0) || math.IsNaN(cfg.TimeScale) {
		return fmt.Errorf("workload: TimeScale %v out of range (want >= 1)", cfg.TimeScale)
	}
	if cfg.Tick <= 0 {
		cfg.Tick = cfg.Duration / 60
	}
	if cfg.Tick <= 0 {
		cfg.Tick = cfg.Duration
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	return nil
}

// driver is one run's mutable state. Completions land on request goroutines,
// so the aggregate state is mutex-guarded; the pacing loop itself is a single
// goroutine.
type driver struct {
	cfg   Config
	clk   clock.Clock
	start time.Time
	sem   chan struct{}
	wg    sync.WaitGroup

	mu        sync.Mutex
	buckets   []Bucket
	latencies [][]time.Duration // per-bucket, ClassOK wall latencies
	retry     map[string]int    // distinct Retry-After values on 429s

	// loopTicks counts consumed pacing steps; fake-clock tests spin on it to
	// hand the loop exactly one step at a time.
	loopTicks *atomic.Int64
}

// Run replays cfg.Pattern against cfg.BaseURL and returns the aggregated
// result once the simulated duration has elapsed and every in-flight request
// has completed. Cancelling ctx stops the replay early; the partial result
// is still returned with an error.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	d, err := newDriver(cfg)
	if err != nil {
		return nil, err
	}
	return d.run(ctx)
}

func newDriver(cfg Config) (*driver, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	clk := clock.Or(cfg.Clock)
	n := int(cfg.Duration / cfg.Tick)
	if time.Duration(n)*cfg.Tick < cfg.Duration {
		n++
	}
	d := &driver{
		cfg:       cfg,
		clk:       clk,
		start:     clk.Now(),
		sem:       make(chan struct{}, cfg.MaxInFlight),
		buckets:   make([]Bucket, n),
		latencies: make([][]time.Duration, n),
		retry:     make(map[string]int),
		loopTicks: new(atomic.Int64),
	}
	for i := range d.buckets {
		start := time.Duration(i) * cfg.Tick
		d.buckets[i] = Bucket{Start: start, TargetRate: cfg.Pattern.Rate(start), QueueDepth: -1}
	}
	return d, nil
}

func (d *driver) run(ctx context.Context) (*Result, error) {
	var runErr error
	switch d.cfg.Mode {
	case ClosedLoop:
		runErr = d.closedLoop(ctx)
	default:
		runErr = d.openLoop(ctx)
	}
	d.wg.Wait() // every launched request has recorded its outcome

	res := d.result()
	if runErr != nil {
		return res, runErr
	}
	return res, nil
}

// simNow maps the current wall offset to simulated time.
func (d *driver) simNow() time.Duration {
	return time.Duration(float64(d.clk.Since(d.start)) * d.cfg.TimeScale)
}

// openLoop offers rate*dt requests per pacing step with a fractional
// accumulator, so non-integer rates are honored exactly over time and the
// launch schedule is deterministic for a given profile.
func (d *driver) openLoop(ctx context.Context) error {
	tick := d.clk.NewTicker(wallStep)
	defer tick.Stop()
	var acc float64
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C():
		}
		simT := d.simNow()
		if simT >= d.cfg.Duration {
			return nil
		}
		acc += d.cfg.Pattern.Rate(simT) * wallStep.Seconds()
		for ; acc >= 1; acc-- {
			d.launch(ctx, simT)
		}
		d.bucketBoundary(simT)
		d.loopTicks.Add(1)
	}
}

// closedLoop retargets the worker pool to ceil(rate) once per pacing step.
// Workers self-pace: next request when the previous finishes, Retry-After
// honored as wall-clock backoff. Retirement is graceful — a retired worker
// (scale-down or run end) finishes its in-flight request and exits before
// starting the next one, so the driver never abandons a request the server
// may already have admitted; cancelled-but-admitted runs would break the
// client/server counter reconciliation and show up as driver sheds.
func (d *driver) closedLoop(ctx context.Context) error {
	tick := d.clk.NewTicker(wallStep)
	defer tick.Stop()
	runDone := make(chan struct{})
	defer close(runDone) // cuts every backoff wait short at run end
	var stops []chan struct{}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C():
		}
		simT := d.simNow()
		if simT >= d.cfg.Duration {
			return nil
		}
		target := int(math.Ceil(d.cfg.Pattern.Rate(simT)))
		for len(stops) < target {
			stop := make(chan struct{})
			stops = append(stops, stop)
			d.wg.Add(1)
			go d.worker(ctx, stop, runDone)
		}
		for len(stops) > target {
			last := len(stops) - 1
			close(stops[last])
			stops = stops[:last]
		}
		d.bucketBoundary(simT)
		d.loopTicks.Add(1)
	}
}

// worker is one closed-loop client: request, classify, back off, repeat,
// until retired (stop), the run ends (runDone), or ctx is cancelled. Only
// ctx cancellation aborts an in-flight request.
func (d *driver) worker(ctx context.Context, stop, runDone <-chan struct{}) {
	defer d.wg.Done()
	for ctx.Err() == nil {
		select {
		case <-stop:
			return
		case <-runDone:
			return
		default:
		}
		simT := d.simNow()
		if simT >= d.cfg.Duration {
			return
		}
		d.record(simT, offeredInc)
		class, retryAfter, _ := d.doRequest(ctx, simT)
		var backoff time.Duration
		switch class {
		case ClassThrottled:
			// Honor the server's hint: this is the herd-avoidance behavior
			// the dynamic Retry-After exists for.
			backoff = retryAfter
			if backoff <= 0 {
				backoff = time.Second
			}
		case ClassOverload, ClassTransport, ClassTimeout, ClassOther:
			// No hint on hard overload: brief fixed pause so a dead server
			// is probed, not hammered.
			backoff = 100 * time.Millisecond
		}
		if backoff > 0 {
			t := d.clk.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-stop:
				t.Stop()
				return
			case <-runDone:
				t.Stop()
				return
			case <-t.C():
			}
		}
	}
}

// launch sends one open-loop request on its own goroutine, shedding locally
// when the in-flight cap is reached.
func (d *driver) launch(ctx context.Context, simT time.Duration) {
	d.record(simT, offeredInc)
	select {
	case d.sem <- struct{}{}:
	default:
		d.record(simT, classInc(ClassShed))
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer func() { <-d.sem }()
		d.doRequest(ctx, simT)
	}()
}

// doRequest issues one POST /run, classifies the outcome, and records it
// (with latency for successes) at the completion's simulated time.
func (d *driver) doRequest(ctx context.Context, launchSim time.Duration) (Class, time.Duration, error) {
	reqCtx, cancel := context.WithTimeout(ctx, d.cfg.RequestTimeout)
	defer cancel()
	began := d.clk.Now()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, d.cfg.BaseURL+"/run", strings.NewReader(d.cfg.Body))
	if err != nil {
		d.record(launchSim, classInc(ClassTransport))
		return ClassTransport, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.cfg.Client.Do(req)
	doneSim := d.simNow()
	if err != nil {
		// A per-request deadline is the server's fault (ClassTimeout); an
		// interrupted replay (ctx cancelled mid-request) is bookkept as
		// shed, not as a server transport failure.
		class := ClassTransport
		switch {
		case errors.Is(reqCtx.Err(), context.DeadlineExceeded):
			class = ClassTimeout
		case errors.Is(reqCtx.Err(), context.Canceled):
			class = ClassShed
		}
		d.record(doneSim, classInc(class))
		return class, 0, err
	}
	drainBody(resp)
	var retryAfter time.Duration
	var class Class
	switch resp.StatusCode {
	case http.StatusOK:
		class = ClassOK
		lat := d.clk.Since(began)
		d.record(doneSim, func(b *Bucket) { b.Counts[ClassOK]++ })
		d.recordLatency(doneSim, lat)
		return class, 0, nil
	case http.StatusTooManyRequests:
		class = ClassThrottled
		hint := resp.Header.Get("Retry-After")
		if secs, err := strconv.Atoi(hint); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		d.mu.Lock()
		d.retry[hint]++
		d.mu.Unlock()
	case http.StatusServiceUnavailable:
		class = ClassOverload
	default:
		class = ClassOther
	}
	d.record(doneSim, classInc(class))
	return class, retryAfter, nil
}

func classInc(c Class) func(*Bucket) {
	return func(b *Bucket) { b.Counts[c]++ }
}

func offeredInc(b *Bucket) { b.Offered++ }

// record applies fn to the bucket containing simulated time simT.
func (d *driver) record(simT time.Duration, fn func(*Bucket)) {
	d.mu.Lock()
	fn(&d.buckets[d.bucketIdx(simT)])
	d.mu.Unlock()
}

func (d *driver) recordLatency(simT time.Duration, lat time.Duration) {
	d.mu.Lock()
	i := d.bucketIdx(simT)
	d.latencies[i] = append(d.latencies[i], lat)
	d.mu.Unlock()
}

// bucketIdx clamps, because completions can land just past Duration.
func (d *driver) bucketIdx(simT time.Duration) int {
	i := int(simT / d.cfg.Tick)
	if i < 0 {
		i = 0
	}
	if i >= len(d.buckets) {
		i = len(d.buckets) - 1
	}
	return i
}

// bucketBoundary fires the queue-depth scrape for a bucket the pacing loop
// has just moved past. The scrape runs async so a slow /metrics endpoint
// cannot stall the launch schedule.
func (d *driver) bucketBoundary(simT time.Duration) {
	if !d.cfg.ScrapeQueueDepth {
		return
	}
	i := d.bucketIdx(simT)
	d.mu.Lock()
	fire := i > 0 && d.buckets[i-1].QueueDepth == -1 && !d.buckets[i-1].scraping
	if fire {
		d.buckets[i-1].scraping = true
	}
	d.mu.Unlock()
	if !fire {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		m, err := ScrapeMetrics(context.Background(), d.cfg.Client, d.cfg.BaseURL)
		if err != nil {
			return // the bucket keeps QueueDepth -1: "not observed"
		}
		if v, ok := m["vista_admission_queue_depth"]; ok {
			d.mu.Lock()
			d.buckets[i-1].QueueDepth = v
			d.mu.Unlock()
		}
	}()
}
