package workload

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ScrapeMetrics fetches base+"/metrics" and parses the flat Prometheus text
// exposition into series -> value, keyed "name" or `name{labels}` exactly as
// exposed. The driver samples queue depth from it at bucket boundaries, and
// vista-load diffs before/after scrapes to reconcile the server's admission
// counters against the client-observed response classes.
func ScrapeMetrics(ctx context.Context, client Doer, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("workload: scrape: %w", err)
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: scrape: /metrics returned %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// drainBody consumes and closes a response body so the transport can reuse
// the connection.
func drainBody(resp *http.Response) {
	if resp.Body == nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
