package workload

import (
	"math"
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, spec string) Pattern {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

func TestParseShapes(t *testing.T) {
	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	cases := []struct {
		spec string
		at   time.Duration
		want float64
	}{
		{"const(5)", 0, 5},
		{"const(5)", 100 * time.Hour, 5},
		{"const(2.5)", time.Minute, 2.5},

		// Diurnal: trough at 0, peak at half period, back to trough.
		{"diurnal(2,12,24h)", 0, 2},
		{"diurnal(2,12,24h)", 12 * time.Hour, 12},
		{"diurnal(2,12,24h)", 24 * time.Hour, 2},
		{"diurnal(2,12,24h)", 6 * time.Hour, 7}, // midpoint of the rise

		{"step(4h,9)", 0, 0},
		{"step(4h,9)", 4*time.Hour - time.Nanosecond, 0},
		{"step(4h,9)", 4 * time.Hour, 9},

		{"burst(12h,30m,40)", 12*time.Hour - time.Second, 0},
		{"burst(12h,30m,40)", 12 * time.Hour, 40},
		{"burst(12h,30m,40)", 12*time.Hour + 29*time.Minute, 40},
		{"burst(12h,30m,40)", 12*time.Hour + 30*time.Minute, 0},
		{"flood(1h,5m,200)", 1*time.Hour + time.Minute, 200},

		// Composition sums terms.
		{"const(2) + burst(1h,1h,10)", 30 * time.Minute, 2},
		{"const(2) + burst(1h,1h,10)", 90 * time.Minute, 12},
		{"diurnal(2,12,24h) + flood(12h,10m,50)", 12 * time.Hour, 62},
	}
	for _, c := range cases {
		if got := mustParse(t, c.spec).Rate(c.at); !near(got, c.want) {
			t.Errorf("%q at %s = %v, want %v", c.spec, c.at, got, c.want)
		}
	}
}

func TestParseRoundTripsString(t *testing.T) {
	spec := "diurnal(2,12,24h0m0s) + burst(12h0m0s,30m0s,40)"
	p := mustParse(t, spec)
	again := mustParse(t, p.String())
	for _, at := range []time.Duration{0, time.Hour, 12 * time.Hour, 23 * time.Hour} {
		if a, b := p.Rate(at), again.Rate(at); a != b {
			t.Errorf("re-parsed %q diverges at %s: %v vs %v", p.String(), at, a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"const()",
		"const(1,2)",
		"const(-3)",
		"wave(1,2,3h)",
		"diurnal(12,2,24h)", // peak below base
		"diurnal(2,12,0s)",  // zero period
		"burst(1h,0s,5)",    // zero duration
		"burst(1h,5m)",      // missing rate
		"const(1) + ",
		"const(1",
		"step(nope,5)",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseErrorNamesTerm(t *testing.T) {
	_, err := Parse("const(2) + wave(9)")
	if err == nil || !strings.Contains(err.Error(), "wave(9)") {
		t.Errorf("error %v does not point at the offending term", err)
	}
}
