package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Bucket is one timeline tick: everything the driver observed inside one
// simulated interval [Start, Start+Tick).
type Bucket struct {
	// Start is the bucket's simulated offset from the profile start.
	Start time.Duration
	// TargetRate is the profile's offered rate at Start (requests/sec).
	TargetRate float64
	// Offered counts requests launched (open loop) or attempted (closed
	// loop) in the bucket.
	Offered int
	// Counts holds per-class completions recorded in the bucket, indexed by
	// Class. Completions land in the bucket of their completion time, so a
	// bucket's Offered and the sum of its Counts differ for slow requests;
	// only run totals reconcile exactly.
	Counts [numClasses]int
	// P50 and P99 are wall-clock latency quantiles over the bucket's
	// successful (200) requests; zero when none completed.
	P50, P99 time.Duration
	// QueueDepth is vista_admission_queue_depth scraped at the bucket
	// boundary, or -1 when not observed.
	QueueDepth float64

	scraping bool // boundary scrape already dispatched
}

// Result aggregates one driver run.
type Result struct {
	// Profile, Mode, Duration, TimeScale, Tick echo the config for readers
	// of a serialized timeline.
	Profile   string
	Mode      Mode
	Duration  time.Duration
	TimeScale float64
	Tick      time.Duration
	// WallElapsed is how long the replay actually took.
	WallElapsed time.Duration
	// Buckets is the timeline, oldest first.
	Buckets []Bucket
	// Offered and Counts are run totals; Offered always equals the sum of
	// Counts — every offered request lands in exactly one class.
	Offered int
	Counts  [numClasses]int
	// RetryAfter counts 429 responses by their Retry-After header value.
	// One distinct key across an overload episode is the retry-herd bug.
	RetryAfter map[string]int
}

// result snapshots the driver's aggregate state after the run has drained.
func (d *driver) result() *Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	res := &Result{
		Profile:     d.cfg.Pattern.String(),
		Mode:        d.cfg.Mode,
		Duration:    d.cfg.Duration,
		TimeScale:   d.cfg.TimeScale,
		Tick:        d.cfg.Tick,
		WallElapsed: d.clk.Since(d.start),
		Buckets:     make([]Bucket, len(d.buckets)),
		RetryAfter:  make(map[string]int, len(d.retry)),
	}
	copy(res.Buckets, d.buckets)
	for i := range res.Buckets {
		b := &res.Buckets[i]
		b.P50 = quantile(d.latencies[i], 0.50)
		b.P99 = quantile(d.latencies[i], 0.99)
		res.Offered += b.Offered
		for c := 0; c < numClasses; c++ {
			res.Counts[c] += b.Counts[c]
		}
	}
	for k, v := range d.retry {
		res.RetryAfter[k] = v
	}
	return res
}

// quantile is the nearest-rank quantile of an unsorted sample (0 when
// empty). The sample is copied, not mutated.
func quantile(sample []time.Duration, q float64) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	s := make([]time.Duration, len(sample))
	copy(s, sample)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Checks configures Result.Verify — the exit-code invariants a load run
// enforces on the serving stack.
type Checks struct {
	// MaxTransport bounds connection-level failures (refused/reset/EOF).
	// The default 0 is the contract: an overloaded server sheds with 429
	// and 503, it never stops answering the socket.
	MaxTransport int
	// MaxTimeouts bounds client-side request timeouts (default 0).
	MaxTimeouts int
	// MaxShed bounds driver-side drops (default 0): nonzero shed means the
	// driver under-offered and the run's conclusions are suspect.
	MaxShed int
	// OffPeakP99 bounds P99 latency in every bucket whose target rate is
	// below OffPeakBelow (0 disables the check). Off-peak is where latency
	// has no excuse; peak buckets are judged by shedding, not speed.
	OffPeakP99   time.Duration
	OffPeakBelow float64
	// MinDistinctRetryAfter requires at least this many distinct Retry-After
	// values across the run's 429s (0 disables). Any value >= 2 is the
	// regression gate for the static-hint herd bug; it is only enforced
	// when the run produced at least MinDistinctRetryAfter 429s.
	MinDistinctRetryAfter int
}

// Verify returns every violated invariant (empty = the run upheld the
// serving contract).
func (r *Result) Verify(c Checks) []error {
	var errs []error
	sum := 0
	for _, n := range r.Counts {
		sum += n
	}
	if sum != r.Offered {
		errs = append(errs, fmt.Errorf("workload: outcomes sum to %d, offered %d — a request escaped classification", sum, r.Offered))
	}
	if n := r.Counts[ClassTransport]; n > c.MaxTransport {
		errs = append(errs, fmt.Errorf("workload: %d transport failures (allowed %d)", n, c.MaxTransport))
	}
	if n := r.Counts[ClassTimeout]; n > c.MaxTimeouts {
		errs = append(errs, fmt.Errorf("workload: %d request timeouts (allowed %d)", n, c.MaxTimeouts))
	}
	if n := r.Counts[ClassShed]; n > c.MaxShed {
		errs = append(errs, fmt.Errorf("workload: driver shed %d requests (allowed %d) — raise MaxInFlight or lower the profile", n, c.MaxShed))
	}
	if n := r.Counts[ClassOther]; n > 0 {
		errs = append(errs, fmt.Errorf("workload: %d responses outside the 200/429/503 contract", n))
	}
	if c.OffPeakP99 > 0 {
		for _, b := range r.Buckets {
			if b.TargetRate >= c.OffPeakBelow || b.P99 == 0 {
				continue
			}
			if b.P99 > c.OffPeakP99 {
				errs = append(errs, fmt.Errorf("workload: off-peak bucket at %s (rate %.2f) has p99 %s, bound %s",
					b.Start, b.TargetRate, b.P99, c.OffPeakP99))
			}
		}
	}
	if c.MinDistinctRetryAfter > 0 && r.Counts[ClassThrottled] >= c.MinDistinctRetryAfter {
		if got := len(r.RetryAfter); got < c.MinDistinctRetryAfter {
			errs = append(errs, fmt.Errorf("workload: %d 429s carried only %d distinct Retry-After value(s) (want >= %d) — a constant hint re-synchronizes the retry herd",
				r.Counts[ClassThrottled], got, c.MinDistinctRetryAfter))
		}
	}
	return errs
}

// Summary renders the run totals as one human line.
func (r *Result) Summary() string {
	return fmt.Sprintf("%s mode=%s scale=%.0fx wall=%s offered=%d ok=%d throttled=%d overload=%d other=%d timeout=%d transport=%d shed=%d distinct-retry-after=%d",
		r.Profile, r.Mode, r.TimeScale, r.WallElapsed.Round(time.Millisecond),
		r.Offered, r.Counts[ClassOK], r.Counts[ClassThrottled], r.Counts[ClassOverload],
		r.Counts[ClassOther], r.Counts[ClassTimeout], r.Counts[ClassTransport], r.Counts[ClassShed],
		len(r.RetryAfter))
}

// WriteCSV emits the timeline, one row per bucket, with a header row. The
// column set is stable — downstream plots depend on it.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "sim_offset_s,target_rate,offered,ok,throttled,overload,other,timeout,transport,shed,p50_ms,p99_ms,queue_depth"); err != nil {
		return err
	}
	for _, b := range r.Buckets {
		_, err := fmt.Fprintf(w, "%.3f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%g\n",
			b.Start.Seconds(), b.TargetRate, b.Offered,
			b.Counts[ClassOK], b.Counts[ClassThrottled], b.Counts[ClassOverload],
			b.Counts[ClassOther], b.Counts[ClassTimeout], b.Counts[ClassTransport], b.Counts[ClassShed],
			float64(b.P50)/float64(time.Millisecond), float64(b.P99)/float64(time.Millisecond),
			b.QueueDepth)
		if err != nil {
			return err
		}
	}
	return nil
}

// timelineJSON is the stable JSON shape of a serialized run.
type timelineJSON struct {
	Profile    string         `json:"profile"`
	Mode       string         `json:"mode"`
	DurationS  float64        `json:"duration_s"`
	TimeScale  float64        `json:"time_scale"`
	TickS      float64        `json:"tick_s"`
	WallS      float64        `json:"wall_s"`
	Offered    int            `json:"offered"`
	Counts     map[string]int `json:"counts"`
	RetryAfter map[string]int `json:"retry_after"`
	Buckets    []bucketJSON   `json:"buckets"`
}

type bucketJSON struct {
	SimOffsetS float64        `json:"sim_offset_s"`
	TargetRate float64        `json:"target_rate"`
	Offered    int            `json:"offered"`
	Counts     map[string]int `json:"counts"`
	P50Ms      float64        `json:"p50_ms"`
	P99Ms      float64        `json:"p99_ms"`
	QueueDepth float64        `json:"queue_depth"`
}

// WriteJSON emits the whole result (totals + timeline) as one JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	doc := timelineJSON{
		Profile:    r.Profile,
		Mode:       r.Mode.String(),
		DurationS:  r.Duration.Seconds(),
		TimeScale:  r.TimeScale,
		TickS:      r.Tick.Seconds(),
		WallS:      r.WallElapsed.Seconds(),
		Offered:    r.Offered,
		Counts:     classMap(r.Counts),
		RetryAfter: r.RetryAfter,
	}
	for _, b := range r.Buckets {
		doc.Buckets = append(doc.Buckets, bucketJSON{
			SimOffsetS: b.Start.Seconds(),
			TargetRate: b.TargetRate,
			Offered:    b.Offered,
			Counts:     classMap(b.Counts),
			P50Ms:      float64(b.P50) / float64(time.Millisecond),
			P99Ms:      float64(b.P99) / float64(time.Millisecond),
			QueueDepth: b.QueueDepth,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func classMap(counts [numClasses]int) map[string]int {
	m := make(map[string]int, numClasses)
	for c := 0; c < numClasses; c++ {
		if counts[c] != 0 {
			m[Class(c).String()] = counts[c]
		}
	}
	return m
}
