// Package workload generates profile-driven HTTP traffic against a live
// vista-server and verifies the serving stack's load-shedding contract while
// it runs.
//
// A Pattern maps a simulated clock offset to an offered request rate; the
// small DSL in Parse composes the shapes operators reason about — a diurnal
// sine, steps, bursts, floods — into one profile, e.g.
//
//	diurnal(2,12,24h) + burst(12h,30m,40)
//
// The Driver replays a profile against a server under time compression: with
// TimeScale 720, 24 simulated hours sweep past in two minutes of wall clock,
// while instantaneous request rates stay at their nominal per-second values.
// That turns "does admission shed the lunch spike and recover by evening?"
// from an overnight soak test into a CI-sized check: the driver records a
// per-tick timeline (offered load, response classes, latency quantiles,
// scraped queue depth) and Result.Verify turns the serving contract —
// counters reconcile, the transport never fails, off-peak latency stays
// within its bound, 429 Retry-After hints are not a herd-synchronizing
// constant — into exit-code invariants.
package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Pattern is an offered-load profile: Rate reports the target request rate
// (requests per wall-clock second) at simulated offset t from the start of
// the profile. Implementations must be pure — the driver and the timeline
// both evaluate them repeatedly.
type Pattern interface {
	Rate(t time.Duration) float64
	String() string
}

// Parse builds a Pattern from the profile DSL: one or more terms joined by
// "+", each term a call of one of the shapes below. Rates are floats
// (requests/second), times and durations use Go duration syntax (30m, 24h).
//
//	const(r)          r at every instant
//	diurnal(b,p,per)  sine between base b and peak p with period per
//	                  (trough at t=0, peak at per/2)
//	step(at,r)        0 before at, r from at onward
//	burst(at,dur,r)   r inside [at, at+dur), 0 outside
//	flood(at,dur,r)   burst synonym, named for overload phases
//
// The empty string is an error: a driver with no profile has no work.
func Parse(spec string) (Pattern, error) {
	var terms []Pattern
	for _, raw := range strings.Split(spec, "+") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return nil, fmt.Errorf("workload: empty term in profile %q", spec)
		}
		term, err := parseTerm(raw)
		if err != nil {
			return nil, fmt.Errorf("workload: profile term %q: %w", raw, err)
		}
		terms = append(terms, term)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return sum(terms), nil
}

// parseTerm parses one name(arg,...) call.
func parseTerm(s string) (Pattern, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("want name(args...)")
	}
	name := strings.TrimSpace(s[:open])
	var args []string
	if body := strings.TrimSpace(s[open+1 : len(s)-1]); body != "" {
		args = strings.Split(body, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	switch name {
	case "const":
		r, err := rateArgs(name, args, 1)
		if err != nil {
			return nil, err
		}
		return constant{r[0]}, nil
	case "diurnal":
		if err := arity(name, args, 3); err != nil {
			return nil, err
		}
		base, err1 := rate(args[0])
		peak, err2 := rate(args[1])
		period, err3 := dur(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if peak < base {
			return nil, fmt.Errorf("peak %v below base %v", peak, base)
		}
		if period <= 0 {
			return nil, fmt.Errorf("non-positive period %v", period)
		}
		return diurnal{base: base, peak: peak, period: period}, nil
	case "step":
		if err := arity(name, args, 2); err != nil {
			return nil, err
		}
		at, err1 := dur(args[0])
		r, err2 := rate(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return step{at: at, r: r}, nil
	case "burst", "flood":
		if err := arity(name, args, 3); err != nil {
			return nil, err
		}
		at, err1 := dur(args[0])
		d, err2 := dur(args[1])
		r, err3 := rate(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("non-positive duration %v", d)
		}
		return burst{name: name, at: at, dur: d, r: r}, nil
	default:
		return nil, fmt.Errorf("unknown shape %q (want const, diurnal, step, burst, flood)", name)
	}
}

func arity(name string, args []string, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s takes %d args, got %d", name, n, len(args))
	}
	return nil
}

func rateArgs(name string, args []string, n int) ([]float64, error) {
	if err := arity(name, args, n); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, a := range args {
		r, err := rate(a)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func rate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("rate %q out of range", s)
	}
	return v, nil
}

func dur(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type constant struct{ r float64 }

func (c constant) Rate(time.Duration) float64 { return c.r }
func (c constant) String() string             { return fmt.Sprintf("const(%g)", c.r) }

// diurnal is the day/night sine: trough (base) at t=0, peak at period/2,
// repeating every period — the paper-era "analysts arrive at 9, leave at 6"
// shape every serving system is provisioned around.
type diurnal struct {
	base, peak float64
	period     time.Duration
}

func (d diurnal) Rate(t time.Duration) float64 {
	phase := 2 * math.Pi * float64(t) / float64(d.period)
	return d.base + (d.peak-d.base)*(1-math.Cos(phase))/2
}

func (d diurnal) String() string {
	return fmt.Sprintf("diurnal(%g,%g,%s)", d.base, d.peak, d.period)
}

type step struct {
	at time.Duration
	r  float64
}

func (s step) Rate(t time.Duration) float64 {
	if t < s.at {
		return 0
	}
	return s.r
}

func (s step) String() string { return fmt.Sprintf("step(%s,%g)", s.at, s.r) }

type burst struct {
	name    string // "burst" or "flood"
	at, dur time.Duration
	r       float64
}

func (b burst) Rate(t time.Duration) float64 {
	if t < b.at || t >= b.at+b.dur {
		return 0
	}
	return b.r
}

func (b burst) String() string {
	return fmt.Sprintf("%s(%s,%s,%g)", b.name, b.at, b.dur, b.r)
}

type sum []Pattern

func (p sum) Rate(t time.Duration) float64 {
	var total float64
	for _, term := range p {
		total += term.Rate(t)
	}
	return total
}

func (p sum) String() string {
	parts := make([]string, len(p))
	for i, term := range p {
		parts[i] = term.String()
	}
	return strings.Join(parts, " + ")
}
