package cnn

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
)

// This file serializes realized CNN weights — the artifact Vista's driver
// builds once and broadcasts to every worker (Section 4.1: "the Driver reads
// and creates a serialized version of the CNN and broadcasts it to the
// workers"). The format is a flate-compressed stream of per-layer tensors.

// ErrCorruptWeights indicates a malformed serialized checkpoint.
var ErrCorruptWeights = errors.New("cnn: corrupt serialized weights")

// weightSlots orders a LayerWeights' tensor fields for serialization.
func weightSlots(w *LayerWeights) [][]float32 {
	return [][]float32{w.W, w.B, w.Gamma, w.Beta, w.Mean, w.Var}
}

func encodeLayer(buf *bytes.Buffer, w *LayerWeights) {
	var scratch [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:], v)
		buf.Write(scratch[:])
	}
	for _, slot := range weightSlots(w) {
		put(uint32(len(slot)))
		for _, v := range slot {
			put(math.Float32bits(v))
		}
	}
	put(uint32(len(w.Sub)))
	for _, sub := range w.Sub {
		encodeLayer(buf, sub)
	}
}

type weightReader struct {
	buf []byte
	off int
}

func (r *weightReader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, ErrCorruptWeights
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *weightReader) decodeLayer(depth int) (*LayerWeights, error) {
	if depth > 8 {
		return nil, fmt.Errorf("%w: nesting too deep", ErrCorruptWeights)
	}
	w := &LayerWeights{}
	slots := []*[]float32{&w.W, &w.B, &w.Gamma, &w.Beta, &w.Mean, &w.Var}
	for _, slot := range slots {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			continue
		}
		if r.off+int(n)*4 > len(r.buf) {
			return nil, ErrCorruptWeights
		}
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
			r.off += 4
		}
		*slot = vals
	}
	nSub, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nSub > 64 {
		return nil, fmt.Errorf("%w: %d sublayers", ErrCorruptWeights, nSub)
	}
	for i := 0; i < int(nSub); i++ {
		sub, err := r.decodeLayer(depth + 1)
		if err != nil {
			return nil, err
		}
		w.Sub = append(w.Sub, sub)
	}
	return w, nil
}

// encodeWeights produces the raw (pre-compression) checkpoint stream.
func encodeWeights(w *Weights) []byte {
	var raw bytes.Buffer
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(w.Layers)))
	raw.Write(scratch[:])
	for _, lw := range w.Layers {
		encodeLayer(&raw, lw)
	}
	return raw.Bytes()
}

// SerializeWeights encodes realized weights into a compressed checkpoint.
func SerializeWeights(w *Weights) ([]byte, error) {
	var out bytes.Buffer
	fw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("cnn: serialize: %w", err)
	}
	if _, err := fw.Write(encodeWeights(w)); err != nil {
		return nil, fmt.Errorf("cnn: serialize: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("cnn: serialize: %w", err)
	}
	return out.Bytes(), nil
}

// WeightsChecksum fingerprints realized weights as the hex SHA-256 of the
// raw checkpoint stream. It hashes the pre-flate bytes so the checksum
// depends only on the weight values, not on the compressor — the identity a
// feature store uses to pin cached features to one exact set of weights.
func WeightsChecksum(w *Weights) string {
	sum := sha256.Sum256(encodeWeights(w))
	return hex.EncodeToString(sum[:])
}

// DeserializeWeights reverses SerializeWeights. The layer count must match
// the model the weights are used with; PartialInfer validates that.
func DeserializeWeights(blob []byte) (*Weights, error) {
	fr := flate.NewReader(bytes.NewReader(blob))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptWeights, err)
	}
	if err := fr.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptWeights, err)
	}
	r := &weightReader{buf: raw}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > 4096 {
		return nil, fmt.Errorf("%w: %d layers", ErrCorruptWeights, n)
	}
	w := &Weights{Layers: make([]*LayerWeights, 0, n)}
	for i := 0; i < int(n); i++ {
		lw, err := r.decodeLayer(0)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		w.Layers = append(w.Layers, lw)
	}
	if r.off != len(raw) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptWeights, len(raw)-r.off)
	}
	return w, nil
}
