package cnn

import (
	"fmt"
	"strings"
)

// Footprint multipliers converting parameter payload into the Table 1 model
// statistics. Serialized checkpoints carry ~1.1× the raw parameter payload
// (framework metadata); the in-memory runtime footprint of a DL system is
// substantially larger than the checkpoint — Section 4.1: "serialized file
// formats of CNNs ... often underestimate their in-memory footprints" — due
// to graph structures, per-thread activation buffers, and allocator slack.
// The multipliers below are calibrated so the roster footprints reproduce
// the paper's observed crash/feasibility boundaries on its 32 GB-node
// cluster and 12 GB GPU: VGG16 replicas (~5 GB each on CPU) force the
// optimizer down to cpu = 4 while AlexNet and ResNet50 sustain cpu = 7
// (Figure 11), and 5 GPU replicas of VGG16 exceed 12 GB (Figure 7A).
const (
	serializedOverhead = 1.1
	memMultiplier      = 10.1
	gpuMemMultiplier   = 5.0
)

// LayerStat describes one feature layer of a model for the optimizer.
type LayerStat struct {
	// Name is the feature-layer label (e.g. "conv5").
	Name string
	// LayerIndex is the index into Model.Layers.
	LayerIndex int
	// RawElems is the unpooled feature tensor's element count.
	RawElems int
	// RawBytes is the unpooled feature tensor payload (4 B per element).
	RawBytes int64
	// FeatureDim is the flattened post-pooling feature-vector length
	// |g_l(f̂_l(I))| used for downstream training and Equation 16.
	FeatureDim int
	// FeatureBytes is the flattened feature-vector payload.
	FeatureBytes int64
	// CumFLOPs is the cost of f̂_l from the raw image.
	CumFLOPs int64
	// DeltaFLOPs is the cost of partial inference from the previous feature
	// layer in L to this one (equal to CumFLOPs for the bottom-most layer).
	DeltaFLOPs int64
}

// Stats aggregates the roster statistics Vista stores per model (Section 4.3:
// "Vista also looks up the CNN's serialized size |f|_ser, runtime memory
// footprint |f|_mem, and runtime GPU memory footprint |f|_mem_gpu from its
// roster").
type Stats struct {
	// ModelName is the roster name.
	ModelName string
	// Params is the total parameter count.
	Params int64
	// SerializedBytes is |f|_ser.
	SerializedBytes int64
	// MemBytes is |f|_mem, the per-replica runtime footprint.
	MemBytes int64
	// GPUMemBytes is |f|_mem_gpu.
	GPUMemBytes int64
	// TotalFLOPs is the cost of one full inference.
	TotalFLOPs int64
	// InputBytes is the image-tensor payload the model consumes.
	InputBytes int64
	// PeakActivationBytes is the largest single layer-output tensor during
	// inference (per image).
	PeakActivationBytes int64
	// ActivationWorkingBytes is the per-image activation working set an
	// inference thread holds: chain CNNs release each activation as soon
	// as the next is computed (residency 1), while residual architectures
	// keep shortcut tensors and branch buffers alive (residency 5,
	// matching observed DL-system peaks for ResNet-style graphs).
	ActivationWorkingBytes int64
	// FeatureLayers holds per-feature-layer statistics, bottom to top.
	FeatureLayers []LayerStat
}

// ComputeStats derives a model's roster statistics by walking its layer
// chain. Everything is computed from the architecture definition, so the
// optimizer's inputs are always consistent with the inference engine.
func ComputeStats(m *Model) (*Stats, error) {
	params, err := m.TotalParams()
	if err != nil {
		return nil, err
	}
	total, err := m.TotalFLOPs()
	if err != nil {
		return nil, err
	}
	st := &Stats{
		ModelName:       m.Name,
		Params:          params,
		SerializedBytes: int64(float64(params*4) * serializedOverhead),
		MemBytes:        int64(float64(params*4) * memMultiplier),
		GPUMemBytes:     int64(float64(params*4) * gpuMemMultiplier),
		TotalFLOPs:      total,
		InputBytes:      int64(m.InputShape.NumElements()) * 4,
	}
	st.PeakActivationBytes = st.InputBytes
	residency := int64(1)
	s := m.InputShape
	for _, l := range m.Layers {
		if _, ok := l.(*Bottleneck); ok {
			residency = 5
		}
		next, err := l.OutShape(s)
		if err != nil {
			return nil, err
		}
		if b := int64(next.NumElements()) * 4; b > st.PeakActivationBytes {
			st.PeakActivationBytes = b
		}
		s = next
	}
	st.ActivationWorkingBytes = residency * st.PeakActivationBytes

	prevIdx := -1
	for _, fl := range m.FeatureLayers {
		raw, err := m.ShapeAt(fl.LayerIndex)
		if err != nil {
			return nil, err
		}
		dim, err := m.FeatureDim(fl)
		if err != nil {
			return nil, err
		}
		cum, err := m.PartialFLOPs(0, fl.LayerIndex)
		if err != nil {
			return nil, err
		}
		var delta int64
		if prevIdx < 0 {
			delta = cum
		} else {
			delta, err = m.PartialFLOPs(prevIdx+1, fl.LayerIndex)
			if err != nil {
				return nil, err
			}
		}
		st.FeatureLayers = append(st.FeatureLayers, LayerStat{
			Name:         fl.Name,
			LayerIndex:   fl.LayerIndex,
			RawElems:     raw.NumElements(),
			RawBytes:     int64(raw.NumElements()) * 4,
			FeatureDim:   dim,
			FeatureBytes: int64(dim) * 4,
			CumFLOPs:     cum,
			DeltaFLOPs:   delta,
		})
		prevIdx = fl.LayerIndex
	}
	return st, nil
}

// Summary renders a Keras-style layer table for a model: name, output
// shape, parameters, and MFLOPs per layer, with feature layers marked.
func Summary(m *Model) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Model: %s (input %v)\n", m.Name, m.InputShape)
	fmt.Fprintf(&b, "%-4s %-14s %-16s %12s %10s  %s\n", "#", "layer", "output", "params", "MFLOPs", "")
	feature := map[int]bool{}
	for _, fl := range m.FeatureLayers {
		feature[fl.LayerIndex] = true
	}
	s := m.InputShape
	var totalParams, totalFLOPs int64
	for i, l := range m.Layers {
		params := l.Params(s)
		flops := l.FLOPs(s)
		next, err := l.OutShape(s)
		if err != nil {
			return "", fmt.Errorf("cnn: summary of %s layer %d: %w", m.Name, i, err)
		}
		mark := ""
		if feature[i] {
			mark = "◄ feature layer"
		}
		fmt.Fprintf(&b, "%-4d %-14s %-16s %12d %10.1f  %s\n",
			i, l.Name(), next.String(), params, float64(flops)/1e6, mark)
		totalParams += params
		totalFLOPs += flops
		s = next
	}
	fmt.Fprintf(&b, "total: %d params, %.1f MFLOPs per inference\n",
		totalParams, float64(totalFLOPs)/1e6)
	return b.String(), nil
}

// LayerStat returns the statistics of the named feature layer.
func (s *Stats) LayerStat(name string) (LayerStat, error) {
	for _, ls := range s.FeatureLayers {
		if ls.Name == name {
			return ls, nil
		}
	}
	return LayerStat{}, fmt.Errorf("%w: %q in stats for %s", ErrNoSuchLayer, name, s.ModelName)
}

// TopLayerStats returns the statistics for the k top-most feature layers,
// bottom-to-top — aligned with Model.TopFeatureLayers. DeltaFLOPs of the
// first returned layer is recomputed to be its full from-image cost, since
// within the selected set L it is the bottom-most layer.
func (s *Stats) TopLayerStats(k int) ([]LayerStat, error) {
	if k <= 0 || k > len(s.FeatureLayers) {
		return nil, fmt.Errorf("cnn: stats for %s has %d feature layers; requested %d",
			s.ModelName, len(s.FeatureLayers), k)
	}
	out := make([]LayerStat, k)
	copy(out, s.FeatureLayers[len(s.FeatureLayers)-k:])
	out[0].DeltaFLOPs = out[0].CumFLOPs
	return out, nil
}

// RedundantFLOPs returns the total FLOPs the Lazy plan wastes versus Staged
// for the given selection of k top layers: Lazy runs f̂_l from the image for
// every l, Staged runs each segment once. This quantifies Section 4.2.1's
// redundancy argument (e.g. fc7 vs fc8 of AlexNet: 99% redundant).
func (s *Stats) RedundantFLOPs(k int) (lazy, staged int64, err error) {
	ls, err := s.TopLayerStats(k)
	if err != nil {
		return 0, 0, err
	}
	for _, l := range ls {
		lazy += l.CumFLOPs
		staged += l.DeltaFLOPs
	}
	return lazy, staged, nil
}
