package cnn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Bottleneck is a ResNet bottleneck residual block: a 1×1 reduce, 3×3, and
// 1×1 expand BN-conv chain with an identity or 1×1-projection shortcut,
// followed by an elementwise add and ReLU (He et al., CVPR 2016). The paper
// models ResNet50 as a chain of such blocks ("it is easy to extend our
// definitions to DAG-structured CNNs", Definition 3.4, footnote 1); treating
// each block as one composite Layer keeps the model a chain while preserving
// the internal DAG.
type Bottleneck struct {
	LayerName string
	// Mid is the bottleneck width (channels of the 3×3 conv); the block's
	// output has 4×Mid channels.
	Mid int
	// Stride applies to the 3×3 conv (and projection shortcut, if any).
	Stride int
	// Project forces a 1×1 projection shortcut; it is also used
	// automatically when input channels != 4*Mid or Stride != 1.
	Project bool

	in tensor.Shape // cached by sublayer builders; not part of identity
}

// Name implements Layer.
func (b *Bottleneck) Name() string { return b.LayerName }

func (b *Bottleneck) needsProjection(in tensor.Shape) bool {
	return b.Project || b.Stride != 1 || in[0] != 4*b.Mid
}

// sublayers returns the block's internal layers for the given input shape:
// reduce, mid, expand, and (optionally) the projection shortcut last.
func (b *Bottleneck) sublayers(in tensor.Shape) ([]Layer, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("%w: bottleneck %s expects CHW, got %v", tensor.ErrShape, b.LayerName, in)
	}
	inC := in[0]
	ls := []Layer{
		&BNConv{LayerName: b.LayerName + ".reduce", ReLU: true,
			Spec: tensor.Conv2DSpec{InChannels: inC, OutChannels: b.Mid, Kernel: 1, Stride: 1}},
		&BNConv{LayerName: b.LayerName + ".mid", ReLU: true,
			Spec: tensor.Conv2DSpec{InChannels: b.Mid, OutChannels: b.Mid, Kernel: 3, Stride: b.Stride, Pad: 1}},
		&BNConv{LayerName: b.LayerName + ".expand", ReLU: false,
			Spec: tensor.Conv2DSpec{InChannels: b.Mid, OutChannels: 4 * b.Mid, Kernel: 1, Stride: 1}},
	}
	if b.needsProjection(in) {
		ls = append(ls, &BNConv{LayerName: b.LayerName + ".proj", ReLU: false,
			Spec: tensor.Conv2DSpec{InChannels: inC, OutChannels: 4 * b.Mid, Kernel: 1, Stride: b.Stride}})
	}
	return ls, nil
}

// OutShape implements Layer.
func (b *Bottleneck) OutShape(in tensor.Shape) (tensor.Shape, error) {
	ls, err := b.sublayers(in)
	if err != nil {
		return nil, err
	}
	s := in
	for _, l := range ls[:3] {
		if s, err = l.OutShape(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// FLOPs implements Layer: sublayer FLOPs plus the residual add and final ReLU.
func (b *Bottleneck) FLOPs(in tensor.Shape) int64 {
	ls, err := b.sublayers(in)
	if err != nil {
		return 0
	}
	var total int64
	s := in
	for i, l := range ls {
		shapeIn := s
		if i == 3 { // projection runs on the block input
			shapeIn = in
		}
		total += l.FLOPs(shapeIn)
		if i < 3 {
			next, err := l.OutShape(s)
			if err != nil {
				return 0
			}
			s = next
		}
	}
	// Residual add + ReLU: 2 ops per output element.
	total += 2 * int64(s.NumElements())
	return total
}

// Params implements Layer.
func (b *Bottleneck) Params(in tensor.Shape) int64 {
	ls, err := b.sublayers(in)
	if err != nil {
		return 0
	}
	var total int64
	s := in
	for i, l := range ls {
		shapeIn := s
		if i == 3 {
			shapeIn = in
		}
		total += l.Params(shapeIn)
		if i < 3 {
			next, err := l.OutShape(s)
			if err != nil {
				return 0
			}
			s = next
		}
	}
	return total
}

// Apply implements Layer.
func (b *Bottleneck) Apply(in *tensor.Tensor, w *LayerWeights) (*tensor.Tensor, error) {
	ls, err := b.sublayers(in.Shape())
	if err != nil {
		return nil, err
	}
	if len(w.Sub) != len(ls) {
		return nil, fmt.Errorf("cnn: bottleneck %s: %d weight sets for %d sublayers",
			b.LayerName, len(w.Sub), len(ls))
	}
	out := in
	for i, l := range ls[:3] {
		if out, err = l.Apply(out, w.Sub[i]); err != nil {
			return nil, err
		}
	}
	shortcut := in
	if len(ls) == 4 {
		if shortcut, err = ls[3].Apply(in, w.Sub[3]); err != nil {
			return nil, err
		}
	}
	if err := tensor.AddInPlace(out, shortcut); err != nil {
		return nil, fmt.Errorf("cnn: bottleneck %s residual: %w", b.LayerName, err)
	}
	return tensor.ReLU(out), nil
}

// residualBranchGain scales the expand convolution's batch-norm gain at
// initialization. Keeping the residual branch small (SkipInit/Fixup style)
// makes a randomly initialized deep residual network near-identity, so its
// activations neither blow up nor wash out the input signal — essential for
// feature transfer from seeded-random weights.
const residualBranchGain = 0.25

// InitWeights implements Layer.
func (b *Bottleneck) InitWeights(in tensor.Shape, rng *rand.Rand) (*LayerWeights, error) {
	ls, err := b.sublayers(in)
	if err != nil {
		return nil, err
	}
	w := &LayerWeights{Sub: make([]*LayerWeights, len(ls))}
	s := in
	for i, l := range ls {
		shapeIn := s
		if i == 3 {
			shapeIn = in
		}
		sw, err := l.InitWeights(shapeIn, rng)
		if err != nil {
			return nil, err
		}
		w.Sub[i] = sw
		if i < 3 {
			if s, err = l.OutShape(s); err != nil {
				return nil, err
			}
		}
	}
	for i := range w.Sub[2].Gamma {
		w.Sub[2].Gamma[i] = residualBranchGain
	}
	return w, nil
}
