package cnn

import (
	"testing"
)

func TestSerializeWeightsRoundTrip(t *testing.T) {
	for _, name := range []string{"tiny-alexnet", "tiny-resnet50", "tiny-densenet"} {
		t.Run(name, func(t *testing.T) {
			m, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w, err := m.RealizeWeights(9)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := SerializeWeights(w)
			if err != nil {
				t.Fatalf("SerializeWeights: %v", err)
			}
			got, err := DeserializeWeights(blob)
			if err != nil {
				t.Fatalf("DeserializeWeights: %v", err)
			}
			if got.SizeBytes() != w.SizeBytes() {
				t.Fatalf("payload %d vs %d", got.SizeBytes(), w.SizeBytes())
			}
			// Inference through the round-tripped weights is identical.
			img := randImage(m, 4)
			a, err := m.Infer(w, img.Clone())
			if err != nil {
				t.Fatal(err)
			}
			b, err := m.Infer(got, img.Clone())
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Data() {
				if a.Data()[i] != b.Data()[i] {
					t.Fatalf("inference differs at %d", i)
				}
			}
		})
	}
}

func TestSerializeWeightsCompresses(t *testing.T) {
	m := TinyVGG16()
	w, err := m.RealizeWeights(1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := SerializeWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) >= w.SizeBytes() {
		t.Errorf("checkpoint %d B not below raw payload %d B", len(blob), w.SizeBytes())
	}
}

func TestDeserializeWeightsCorruption(t *testing.T) {
	m := TinyAlexNet()
	w, err := m.RealizeWeights(1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := SerializeWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeserializeWeights(blob[:len(blob)/3]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	if _, err := DeserializeWeights([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
}
