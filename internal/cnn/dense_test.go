package cnn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestDenseBlockShapes(t *testing.T) {
	d := &DenseBlock{LayerName: "d", Convs: 3, Growth: 8}
	out, err := d.OutShape(tensor.Shape{16, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{16 + 24, 8, 8}) {
		t.Errorf("OutShape = %v, want (40,8,8)", out)
	}
	if _, err := d.OutShape(tensor.Shape{16}); err == nil {
		t.Error("rank-1 input accepted")
	}
	bad := &DenseBlock{LayerName: "b", Convs: 0, Growth: 8}
	if _, err := bad.OutShape(tensor.Shape{16, 8, 8}); err == nil {
		t.Error("zero convs accepted")
	}
}

func TestDenseBlockApplyGrowsChannels(t *testing.T) {
	d := &DenseBlock{LayerName: "d", Convs: 2, Growth: 4}
	in := tensor.New(8, 6, 6)
	for i := range in.Data() {
		in.Data()[i] = float32(i%7) / 7
	}
	w, err := d.InitWeights(in.Shape(), testRNG())
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Apply(in, w)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !out.Shape().Equal(tensor.Shape{16, 6, 6}) {
		t.Fatalf("output shape = %v, want (16,6,6)", out.Shape())
	}
	// Dense connectivity: the first input channels pass through unchanged
	// (the block emits the concatenation starting with its input).
	for i := 0; i < 8*6*6; i++ {
		if out.Data()[i] != in.Data()[i] {
			t.Fatalf("input channels not preserved at %d", i)
		}
	}
}

func TestDenseBlockParamsAndFLOPs(t *testing.T) {
	d := &DenseBlock{LayerName: "d", Convs: 2, Growth: 4}
	in := tensor.Shape{8, 6, 6}
	// conv1: 8→4 (3x3), conv2: 12→4 (3x3); params = 9*8*4+4*4 + 9*12*4+4*4.
	want := int64(9*8*4+16) + int64(9*12*4+16)
	if got := d.Params(in); got != want {
		t.Errorf("Params = %d, want %d", got, want)
	}
	if d.FLOPs(in) <= 0 {
		t.Error("FLOPs should be positive")
	}
	// The second conv sees more channels, so FLOPs exceed 2× the first
	// conv's cost.
	single := (&BNConv{Spec: tensor.Conv2DSpec{InChannels: 8, OutChannels: 4, Kernel: 3, Stride: 1, Pad: 1}}).FLOPs(in)
	if d.FLOPs(in) <= 2*single {
		t.Errorf("dense FLOPs %d should exceed 2x first conv %d", d.FLOPs(in), 2*single)
	}
}

func TestTinyDenseNetEndToEnd(t *testing.T) {
	m := TinyDenseNet()
	w, err := m.RealizeWeights(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Infer(w, randImage(m, 1))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !out.Shape().Equal(tensor.Shape{32}) {
		t.Errorf("output shape = %v, want (32)", out.Shape())
	}
	// Feature dims: dense1 pooled 2×2×40 = 160; dense2 pooled 2×2×48 = 192;
	// gap = 48.
	wantDims := []int{160, 192, 48}
	for i, fl := range m.FeatureLayers {
		dim, err := m.FeatureDim(fl)
		if err != nil {
			t.Fatal(err)
		}
		if dim != wantDims[i] {
			t.Errorf("%s dim = %d, want %d", fl.Name, dim, wantDims[i])
		}
	}
}

func TestTinyDenseNetPartialInferenceComposes(t *testing.T) {
	// The Staged invariant must hold through DAG blocks too.
	m := TinyDenseNet()
	w, err := m.RealizeWeights(5)
	if err != nil {
		t.Fatal(err)
	}
	img := randImage(m, 2)
	split := m.FeatureLayers[0].LayerIndex // dense1
	full, err := m.Infer(w, img.Clone())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := m.PartialInfer(w, img.Clone(), 0, split)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := m.PartialInfer(w, mid, split+1, m.NumLayers()-1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Data() {
		if d := full.Data()[i] - rest.Data()[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("composed inference diverges at %d", i)
		}
	}
}

func TestTinyDenseNetInRoster(t *testing.T) {
	m, err := ByName("tiny-densenet")
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStats(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Params <= 0 || st.TotalFLOPs <= 0 {
		t.Error("stats not derived")
	}
	if len(st.FeatureLayers) != 3 {
		t.Errorf("feature layer stats = %d, want 3", len(st.FeatureLayers))
	}
	found := false
	for _, n := range RosterNames() {
		if n == "tiny-densenet" {
			found = true
		}
	}
	if !found {
		t.Error("tiny-densenet missing from roster")
	}
}

func testRNG() *rand.Rand { return rand.New(rand.NewSource(17)) }
