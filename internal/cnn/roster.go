package cnn

import (
	"fmt"

	"repro/internal/tensor"
)

// This file defines Vista's CNN roster (Section 3.3: "a roster of popular
// named deep CNNs with numbered feature layers"): AlexNet, VGG16, and
// ResNet50, the three models the paper supports, plus Tiny* variants with the
// same topology but scaled-down channels and input resolution. The full-scale
// models supply the optimizer's statistics (shapes, FLOPs, parameter counts);
// the Tiny variants are small enough to execute for real in tests, examples,
// and the accuracy experiments.

func conv(name string, in, out, k, s, p int) *Conv {
	return &Conv{LayerName: name, ReLU: true,
		Spec: tensor.Conv2DSpec{InChannels: in, OutChannels: out, Kernel: k, Stride: s, Pad: p}}
}

func pool(name string, k, s int) *MaxPool {
	return &MaxPool{LayerName: name, Spec: tensor.PoolSpec{Kernel: k, Stride: s}}
}

// AlexNet returns the full-scale AlexNet architecture (Krizhevsky et al.,
// NIPS 2012) on 227×227 RGB inputs, without the historical filter grouping.
// Feature layers, bottom to top: conv5, fc6, fc7, fc8 — the paper's |L| = 4
// selection (Section 5, "conv5 to fc8 from AlexNet").
func AlexNet() *Model {
	layers := []Layer{
		conv("conv1", 3, 96, 11, 4, 0), // 55×55×96
		pool("pool1", 3, 2),            // 27×27×96
		conv("conv2", 96, 256, 5, 1, 2),
		pool("pool2", 3, 2), // 13×13×256
		conv("conv3", 256, 384, 3, 1, 1),
		conv("conv4", 384, 384, 3, 1, 1),
		conv("conv5", 384, 256, 3, 1, 1), // 13×13×256, feature layer
		pool("pool5", 3, 2),              // 6×6×256
		&FC{LayerName: "fc6", Units: 4096, ReLU: true},
		&FC{LayerName: "fc7", Units: 4096, ReLU: true},
		&FC{LayerName: "fc8", Units: 1000},
	}
	return &Model{
		Name:       "alexnet",
		InputShape: tensor.Shape{3, 227, 227},
		Layers:     layers,
		FeatureLayers: []FeatureLayer{
			{Name: "conv5", LayerIndex: 6},
			{Name: "fc6", LayerIndex: 8},
			{Name: "fc7", LayerIndex: 9},
			{Name: "fc8", LayerIndex: 10},
		},
	}
}

// VGG16 returns the full-scale VGG16 architecture (Simonyan & Zisserman,
// 2014) on 224×224 RGB inputs. Feature layers: fc6, fc7, fc8 — the paper's
// |L| = 3 selection.
func VGG16() *Model {
	var layers []Layer
	add := func(l Layer) { layers = append(layers, l) }
	widths := []struct {
		n, c int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	in := 3
	for b, blk := range widths {
		for i := 0; i < blk.n; i++ {
			add(conv(fmt.Sprintf("conv%d_%d", b+1, i+1), in, blk.c, 3, 1, 1))
			in = blk.c
		}
		add(pool(fmt.Sprintf("pool%d", b+1), 2, 2))
	}
	add(&FC{LayerName: "fc6", Units: 4096, ReLU: true})
	add(&FC{LayerName: "fc7", Units: 4096, ReLU: true})
	add(&FC{LayerName: "fc8", Units: 1000})
	return &Model{
		Name:       "vgg16",
		InputShape: tensor.Shape{3, 224, 224},
		Layers:     layers,
		FeatureLayers: []FeatureLayer{
			{Name: "fc6", LayerIndex: len(layers) - 3},
			{Name: "fc7", LayerIndex: len(layers) - 2},
			{Name: "fc8", LayerIndex: len(layers) - 1},
		},
	}
}

// resNetStages appends ResNet bottleneck stages to layers and returns the
// updated slice. counts[i] blocks at width mids[i]; the first block of every
// stage after the first uses stride 2.
func resNetStages(layers []Layer, mids, counts []int, stageBase int) []Layer {
	for s := range mids {
		for b := 0; b < counts[s]; b++ {
			stride := 1
			if s > 0 && b == 0 {
				stride = 2
			}
			layers = append(layers, &Bottleneck{
				LayerName: fmt.Sprintf("conv%d_%d", stageBase+s, b+1),
				Mid:       mids[s],
				Stride:    stride,
				Project:   b == 0,
			})
		}
	}
	return layers
}

// ResNet50 returns the full-scale ResNet50 architecture (He et al., CVPR
// 2016) on 224×224 RGB inputs. Feature layers, bottom to top: conv4_6,
// conv5_1, conv5_2, conv5_3, fc6 (the globally pooled 2048-vector) — the
// paper's |L| = 5 selection ("top 5 layers from ResNet, from its last two
// layer blocks"; Figure 8 labels them conv4_6, conv5_1..3, fc_6).
func ResNet50() *Model {
	layers := []Layer{
		&BNConv{LayerName: "conv1", ReLU: true,
			Spec: tensor.Conv2DSpec{InChannels: 3, OutChannels: 64, Kernel: 7, Stride: 2, Pad: 3}},
		&MaxPool{LayerName: "pool1", Spec: tensor.PoolSpec{Kernel: 3, Stride: 2, Pad: 1}},
	}
	layers = resNetStages(layers, []int{64, 128, 256, 512}, []int{3, 4, 6, 3}, 2)
	layers = append(layers,
		&GlobalAvgPool{LayerName: "pool5"},
		&FC{LayerName: "fc", Units: 1000},
	)
	// Layer indices: 2 stem layers, then 3+4+6+3 = 16 blocks, then pool5, fc.
	conv46 := 2 + 3 + 4 + 6 - 1 // last conv4 block
	return &Model{
		Name:       "resnet50",
		InputShape: tensor.Shape{3, 224, 224},
		Layers:     layers,
		FeatureLayers: []FeatureLayer{
			{Name: "conv4_6", LayerIndex: conv46},
			{Name: "conv5_1", LayerIndex: conv46 + 1},
			{Name: "conv5_2", LayerIndex: conv46 + 2},
			{Name: "conv5_3", LayerIndex: conv46 + 3},
			{Name: "fc6", LayerIndex: conv46 + 4}, // pooled 2048-vector
		},
	}
}

// TinyInputSize is the square input resolution of the Tiny* roster variants.
const TinyInputSize = 64

// TinyAlexNet returns an executable scaled-down AlexNet: same layer
// topology and feature-layer structure on 64×64 inputs with ~1/8 channels.
func TinyAlexNet() *Model {
	layers := []Layer{
		conv("conv1", 3, 16, 5, 2, 2), // 32×32×16
		pool("pool1", 2, 2),           // 16×16×16
		conv("conv2", 16, 32, 3, 1, 1),
		pool("pool2", 2, 2), // 8×8×32
		conv("conv3", 32, 48, 3, 1, 1),
		conv("conv4", 48, 48, 3, 1, 1),
		conv("conv5", 48, 32, 3, 1, 1), // 8×8×32, feature layer
		pool("pool5", 2, 2),            // 4×4×32
		&FC{LayerName: "fc6", Units: 96, ReLU: true},
		&FC{LayerName: "fc7", Units: 96, ReLU: true},
		&FC{LayerName: "fc8", Units: 32},
	}
	return &Model{
		Name:       "tiny-alexnet",
		InputShape: tensor.Shape{3, TinyInputSize, TinyInputSize},
		Layers:     layers,
		FeatureLayers: []FeatureLayer{
			{Name: "conv5", LayerIndex: 6},
			{Name: "fc6", LayerIndex: 8},
			{Name: "fc7", LayerIndex: 9},
			{Name: "fc8", LayerIndex: 10},
		},
	}
}

// TinyVGG16 returns an executable scaled-down VGG16 on 64×64 inputs.
func TinyVGG16() *Model {
	var layers []Layer
	add := func(l Layer) { layers = append(layers, l) }
	widths := []struct {
		n, c int
	}{{2, 8}, {2, 16}, {3, 24}, {3, 32}, {3, 32}}
	in := 3
	for b, blk := range widths {
		for i := 0; i < blk.n; i++ {
			add(conv(fmt.Sprintf("conv%d_%d", b+1, i+1), in, blk.c, 3, 1, 1))
			in = blk.c
		}
		add(pool(fmt.Sprintf("pool%d", b+1), 2, 2))
	}
	add(&FC{LayerName: "fc6", Units: 128, ReLU: true})
	add(&FC{LayerName: "fc7", Units: 128, ReLU: true})
	add(&FC{LayerName: "fc8", Units: 32})
	return &Model{
		Name:       "tiny-vgg16",
		InputShape: tensor.Shape{3, TinyInputSize, TinyInputSize},
		Layers:     layers,
		FeatureLayers: []FeatureLayer{
			{Name: "fc6", LayerIndex: len(layers) - 3},
			{Name: "fc7", LayerIndex: len(layers) - 2},
			{Name: "fc8", LayerIndex: len(layers) - 1},
		},
	}
}

// TinyResNet50 returns an executable scaled-down ResNet50 on 64×64 inputs.
func TinyResNet50() *Model {
	layers := []Layer{
		&BNConv{LayerName: "conv1", ReLU: true,
			Spec: tensor.Conv2DSpec{InChannels: 3, OutChannels: 16, Kernel: 7, Stride: 2, Pad: 3}},
		&MaxPool{LayerName: "pool1", Spec: tensor.PoolSpec{Kernel: 3, Stride: 2, Pad: 1}},
	}
	layers = resNetStages(layers, []int{8, 16, 24, 32}, []int{3, 4, 6, 3}, 2)
	layers = append(layers,
		&GlobalAvgPool{LayerName: "pool5"},
		&FC{LayerName: "fc", Units: 32},
	)
	conv46 := 2 + 3 + 4 + 6 - 1
	return &Model{
		Name:       "tiny-resnet50",
		InputShape: tensor.Shape{3, TinyInputSize, TinyInputSize},
		Layers:     layers,
		FeatureLayers: []FeatureLayer{
			{Name: "conv4_6", LayerIndex: conv46},
			{Name: "conv5_1", LayerIndex: conv46 + 1},
			{Name: "conv5_2", LayerIndex: conv46 + 2},
			{Name: "conv5_3", LayerIndex: conv46 + 3},
			{Name: "fc6", LayerIndex: conv46 + 4},
		},
	}
}

// ByName returns the roster model with the given name.
func ByName(name string) (*Model, error) {
	switch name {
	case "alexnet":
		return AlexNet(), nil
	case "vgg16":
		return VGG16(), nil
	case "resnet50":
		return ResNet50(), nil
	case "tiny-alexnet":
		return TinyAlexNet(), nil
	case "tiny-vgg16":
		return TinyVGG16(), nil
	case "tiny-resnet50":
		return TinyResNet50(), nil
	case "tiny-densenet":
		return TinyDenseNet(), nil
	}
	return nil, fmt.Errorf("cnn: unknown roster model %q", name)
}

// RosterNames lists all models in the roster, full-scale first.
func RosterNames() []string {
	return []string{"alexnet", "vgg16", "resnet50",
		"tiny-alexnet", "tiny-vgg16", "tiny-resnet50", "tiny-densenet"}
}

// TinyVariant maps a full-scale roster name to its executable Tiny model.
func TinyVariant(name string) (*Model, error) {
	switch name {
	case "alexnet", "tiny-alexnet":
		return TinyAlexNet(), nil
	case "vgg16", "tiny-vgg16":
		return TinyVGG16(), nil
	case "resnet50", "tiny-resnet50":
		return TinyResNet50(), nil
	}
	return nil, fmt.Errorf("cnn: no tiny variant for %q", name)
}
