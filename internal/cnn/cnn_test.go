package cnn

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestAlexNetShapes(t *testing.T) {
	m := AlexNet()
	tests := []struct {
		idx  int
		want tensor.Shape
	}{
		{0, tensor.Shape{96, 55, 55}},  // conv1
		{1, tensor.Shape{96, 27, 27}},  // pool1
		{3, tensor.Shape{256, 13, 13}}, // pool2
		{6, tensor.Shape{256, 13, 13}}, // conv5
		{7, tensor.Shape{256, 6, 6}},   // pool5
		{8, tensor.Shape{4096}},        // fc6
		{10, tensor.Shape{1000}},       // fc8
	}
	for _, tc := range tests {
		got, err := m.ShapeAt(tc.idx)
		if err != nil {
			t.Fatalf("ShapeAt(%d): %v", tc.idx, err)
		}
		if !got.Equal(tc.want) {
			t.Errorf("ShapeAt(%d) = %v, want %v", tc.idx, got, tc.want)
		}
	}
}

func TestVGG16Shapes(t *testing.T) {
	m := VGG16()
	// After 5 blocks of 2x downsampling: 224 -> 7, channels 512.
	s, err := m.ShapeAt(len(m.Layers) - 4) // pool5
	if err != nil {
		t.Fatalf("ShapeAt: %v", err)
	}
	if !s.Equal(tensor.Shape{512, 7, 7}) {
		t.Errorf("VGG16 pool5 shape = %v, want (512,7,7)", s)
	}
	fc6, err := m.ShapeAt(len(m.Layers) - 3)
	if err != nil {
		t.Fatalf("ShapeAt fc6: %v", err)
	}
	if !fc6.Equal(tensor.Shape{4096}) {
		t.Errorf("VGG16 fc6 shape = %v, want (4096)", fc6)
	}
}

func TestResNet50Shapes(t *testing.T) {
	m := ResNet50()
	fl := m.FeatureLayers
	if len(fl) != 5 {
		t.Fatalf("ResNet50 has %d feature layers, want 5", len(fl))
	}
	conv46, err := m.ShapeAt(fl[0].LayerIndex)
	if err != nil {
		t.Fatalf("conv4_6 shape: %v", err)
	}
	if !conv46.Equal(tensor.Shape{1024, 14, 14}) {
		t.Errorf("conv4_6 shape = %v, want (1024,14,14)", conv46)
	}
	conv53, err := m.ShapeAt(fl[3].LayerIndex)
	if err != nil {
		t.Fatalf("conv5_3 shape: %v", err)
	}
	if !conv53.Equal(tensor.Shape{2048, 7, 7}) {
		t.Errorf("conv5_3 shape = %v, want (2048,7,7)", conv53)
	}
	pooled, err := m.ShapeAt(fl[4].LayerIndex)
	if err != nil {
		t.Fatalf("fc6 shape: %v", err)
	}
	if !pooled.Equal(tensor.Shape{2048}) {
		t.Errorf("ResNet fc6 (pooled) shape = %v, want (2048)", pooled)
	}
}

func TestParamCountsMatchLiterature(t *testing.T) {
	// Sanity-check the derived parameter counts against the published
	// figures (±5% for our no-grouping AlexNet and BN bookkeeping).
	tests := []struct {
		model *Model
		want  int64 // published params
		tol   float64
	}{
		{AlexNet(), 61_000_000, 0.10}, // ungrouped conv2/4/5 add a few %
		{VGG16(), 138_000_000, 0.02},
		{ResNet50(), 25_600_000, 0.05},
	}
	for _, tc := range tests {
		got, err := tc.model.TotalParams()
		if err != nil {
			t.Fatalf("%s TotalParams: %v", tc.model.Name, err)
		}
		lo := float64(tc.want) * (1 - tc.tol)
		hi := float64(tc.want) * (1 + tc.tol)
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s params = %d, want %d ±%.0f%%", tc.model.Name, got, tc.want, tc.tol*100)
		}
	}
}

func TestFLOPCountsMatchLiterature(t *testing.T) {
	// Published single-inference costs: AlexNet ~1.5 GFLOPs (ungrouped),
	// VGG16 ~31 GFLOPs, ResNet50 ~8 GFLOPs (counting multiply+add as 2).
	tests := []struct {
		model  *Model
		lo, hi float64 // GFLOPs
	}{
		{AlexNet(), 1.0, 2.5},
		{VGG16(), 28, 34},
		{ResNet50(), 6, 10},
	}
	for _, tc := range tests {
		got, err := tc.model.TotalFLOPs()
		if err != nil {
			t.Fatalf("%s TotalFLOPs: %v", tc.model.Name, err)
		}
		g := float64(got) / 1e9
		if g < tc.lo || g > tc.hi {
			t.Errorf("%s FLOPs = %.2f G, want [%.1f, %.1f]", tc.model.Name, g, tc.lo, tc.hi)
		}
	}
}

func TestAlexNetRedundancyMatchesPaper(t *testing.T) {
	// Section 4.2.1: "partial CNN inference for fc7 (721 MFLOPS)
	// independently of fc8 (725 MFLOPS), incurring 99% redundant
	// computations for fc8". fc8's incremental cost over fc7 must be a tiny
	// fraction of its cumulative cost.
	st, err := ComputeStats(AlexNet())
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	fc7, err := st.LayerStat("fc7")
	if err != nil {
		t.Fatal(err)
	}
	fc8, err := st.LayerStat("fc8")
	if err != nil {
		t.Fatal(err)
	}
	redundant := float64(fc7.CumFLOPs) / float64(fc8.CumFLOPs)
	if redundant < 0.97 {
		t.Errorf("fc7/fc8 cumulative FLOP ratio = %.3f, want > 0.97 (paper: 99%% redundancy)", redundant)
	}
	if fc8.DeltaFLOPs >= fc8.CumFLOPs/10 {
		t.Errorf("fc8 delta FLOPs %d not small vs cumulative %d", fc8.DeltaFLOPs, fc8.CumFLOPs)
	}
}

func TestFeatureBlowupMatchesPaper(t *testing.T) {
	// Section 1.1: "one of ResNet50's layers is 784KB but the image is only
	// 14KB". The conv4_6 raw feature is 14*14*1024*4 = 802816 B = 784 KB.
	m := ResNet50()
	fl := m.FeatureLayers[0] // conv4_6
	size, err := m.RawFeatureSize(fl)
	if err != nil {
		t.Fatalf("RawFeatureSize: %v", err)
	}
	if size != 784*1024 {
		t.Errorf("conv4_6 raw feature = %d B, want 802816 B (784 KB, paper Section 1.1)", size)
	}
}

func TestTopFeatureLayers(t *testing.T) {
	m := AlexNet()
	top2, err := m.TopFeatureLayers(2)
	if err != nil {
		t.Fatalf("TopFeatureLayers: %v", err)
	}
	if top2[0].Name != "fc7" || top2[1].Name != "fc8" {
		t.Errorf("top 2 = %v, want fc7, fc8", top2)
	}
	if _, err := m.TopFeatureLayers(5); err == nil {
		t.Error("expected error for k beyond available layers")
	}
	if _, err := m.TopFeatureLayers(0); err == nil {
		t.Error("expected error for k = 0")
	}
}

func TestFeatureLayerIndex(t *testing.T) {
	m := ResNet50()
	i, err := m.FeatureLayerIndex("conv5_2")
	if err != nil {
		t.Fatalf("FeatureLayerIndex: %v", err)
	}
	if m.FeatureLayers[i].Name != "conv5_2" {
		t.Errorf("wrong index %d", i)
	}
	if _, err := m.FeatureLayerIndex("nope"); err == nil {
		t.Error("expected ErrNoSuchLayer")
	}
}

func TestRealizeWeightsGuard(t *testing.T) {
	// VGG16 is above the realization limit; Tiny models are fine.
	if _, err := VGG16().RealizeWeights(1); err == nil {
		t.Error("expected realization guard to reject VGG16")
	}
	w, err := TinyVGG16().RealizeWeights(1)
	if err != nil {
		t.Fatalf("TinyVGG16 RealizeWeights: %v", err)
	}
	if w.SizeBytes() <= 0 {
		t.Error("weights have no payload")
	}
}

func TestRealizeWeightsDeterministic(t *testing.T) {
	m := TinyAlexNet()
	w1, err := m.RealizeWeights(42)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := m.RealizeWeights(42)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Layers[0].W[0] != w2.Layers[0].W[0] || w1.Layers[4].W[7] != w2.Layers[4].W[7] {
		t.Error("weights not deterministic for equal seeds")
	}
	w3, err := m.RealizeWeights(43)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Layers[0].W[0] == w3.Layers[0].W[0] {
		t.Error("different seeds produced identical first weight")
	}
}

// randImage returns a deterministic random CHW image tensor.
func randImage(m *Model, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	img := tensor.New(m.InputShape...)
	d := img.Data()
	for i := range d {
		d[i] = rng.Float32()
	}
	return img
}

func TestTinyModelsEndToEndInference(t *testing.T) {
	for _, name := range []string{"tiny-alexnet", "tiny-vgg16", "tiny-resnet50"} {
		t.Run(name, func(t *testing.T) {
			m, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w, err := m.RealizeWeights(7)
			if err != nil {
				t.Fatalf("RealizeWeights: %v", err)
			}
			out, err := m.Infer(w, randImage(m, 1))
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			want, err := m.ShapeAt(m.NumLayers() - 1)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Shape().Equal(want) {
				t.Errorf("output shape = %v, want %v", out.Shape(), want)
			}
			if out.MaxAbs() == 0 {
				t.Error("inference produced all zeros")
			}
		})
	}
}

func TestPartialInferenceComposes(t *testing.T) {
	// Definition 3.7: f̂_{0→j} == f̂_{i+1→j}(f̂_{0→i}(t)) — the invariant the
	// Staged plan relies on.
	m := TinyResNet50()
	w, err := m.RealizeWeights(7)
	if err != nil {
		t.Fatal(err)
	}
	img := randImage(m, 2)
	split := m.FeatureLayers[0].LayerIndex // conv4_6

	full, err := m.Infer(w, img.Clone())
	if err != nil {
		t.Fatalf("full inference: %v", err)
	}
	mid, err := m.PartialInfer(w, img.Clone(), 0, split)
	if err != nil {
		t.Fatalf("partial inference to %d: %v", split, err)
	}
	rest, err := m.PartialInfer(w, mid, split+1, m.NumLayers()-1)
	if err != nil {
		t.Fatalf("partial inference from %d: %v", split+1, err)
	}
	if !full.Shape().Equal(rest.Shape()) {
		t.Fatalf("shape mismatch: %v vs %v", full.Shape(), rest.Shape())
	}
	for i := range full.Data() {
		if diff := full.Data()[i] - rest.Data()[i]; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("composed partial inference diverges at %d: %v vs %v",
				i, full.Data()[i], rest.Data()[i])
		}
	}
}

func TestPartialInferRangeValidation(t *testing.T) {
	m := TinyAlexNet()
	w, err := m.RealizeWeights(1)
	if err != nil {
		t.Fatal(err)
	}
	img := randImage(m, 3)
	if _, err := m.PartialInfer(w, img, 5, 2); err == nil {
		t.Error("expected error for from > to")
	}
	if _, err := m.PartialInfer(w, img, -1, 2); err == nil {
		t.Error("expected error for negative from")
	}
	if _, err := m.PartialInfer(w, img, 0, 99); err == nil {
		t.Error("expected error for to out of range")
	}
	if _, err := m.PartialInfer(nil, img, 0, 1); err == nil {
		t.Error("expected error for nil weights")
	}
}

func TestFeatureVectorPoolsConvLayers(t *testing.T) {
	m := TinyAlexNet()
	w, err := m.RealizeWeights(1)
	if err != nil {
		t.Fatal(err)
	}
	fl := m.FeatureLayers[0] // conv5, 8x8x32
	raw, err := m.PartialInfer(w, randImage(m, 4), 0, fl.LayerIndex)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := FeatureVector(raw)
	if err != nil {
		t.Fatalf("FeatureVector: %v", err)
	}
	wantDim, err := m.FeatureDim(fl)
	if err != nil {
		t.Fatal(err)
	}
	if vec.NumElements() != wantDim {
		t.Errorf("feature dim = %d, want %d", vec.NumElements(), wantDim)
	}
	// conv5 of tiny-alexnet is 8x8x32 -> 2x2x32 = 128.
	if wantDim != 128 {
		t.Errorf("tiny-alexnet conv5 pooled dim = %d, want 128", wantDim)
	}
}

func TestFeatureDimFullScale(t *testing.T) {
	// AlexNet conv5 13x13x256 pooled to 2x2 grid = 1024 features; fc6 = 4096.
	m := AlexNet()
	tests := []struct {
		name string
		want int
	}{
		{"conv5", 1024},
		{"fc6", 4096},
		{"fc7", 4096},
		{"fc8", 1000},
	}
	for _, tc := range tests {
		i, err := m.FeatureLayerIndex(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		dim, err := m.FeatureDim(m.FeatureLayers[i])
		if err != nil {
			t.Fatal(err)
		}
		if dim != tc.want {
			t.Errorf("%s feature dim = %d, want %d", tc.name, dim, tc.want)
		}
	}
}

func TestStatsTopLayerStats(t *testing.T) {
	st, err := ComputeStats(AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	top, err := st.TopLayerStats(2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Name != "fc7" || top[1].Name != "fc8" {
		t.Fatalf("top 2 stats = %s, %s; want fc7, fc8", top[0].Name, top[1].Name)
	}
	// Within L = {fc7, fc8}, fc7 is bottom-most: its delta is its full cost.
	if top[0].DeltaFLOPs != top[0].CumFLOPs {
		t.Errorf("bottom-of-L delta = %d, want full cumulative %d", top[0].DeltaFLOPs, top[0].CumFLOPs)
	}
	if _, err := st.TopLayerStats(99); err == nil {
		t.Error("expected error for oversized k")
	}
}

func TestRedundantFLOPs(t *testing.T) {
	st, err := ComputeStats(AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	lazy, staged, err := st.RedundantFLOPs(4)
	if err != nil {
		t.Fatal(err)
	}
	if lazy <= staged {
		t.Errorf("lazy FLOPs %d not greater than staged %d", lazy, staged)
	}
	// With 4 layers from conv5 up, Lazy repeats nearly the whole network 4
	// times; expect at least 3x redundancy.
	if float64(lazy)/float64(staged) < 3 {
		t.Errorf("lazy/staged = %.2f, want >= 3", float64(lazy)/float64(staged))
	}
}

func TestStatsFootprintOrdering(t *testing.T) {
	// VGG16 is the largest model; ResNet50 the smallest serialized of the
	// trio ("They complement each other in terms of model size", Section 5).
	var sizes []int64
	for _, name := range []string{"alexnet", "vgg16", "resnet50"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ComputeStats(m)
		if err != nil {
			t.Fatal(err)
		}
		if st.MemBytes <= st.SerializedBytes {
			t.Errorf("%s: runtime footprint %d not above serialized %d",
				name, st.MemBytes, st.SerializedBytes)
		}
		sizes = append(sizes, st.SerializedBytes)
	}
	if !(sizes[1] > sizes[0] && sizes[0] > sizes[2]) {
		t.Errorf("serialized sizes (alexnet, vgg16, resnet50) = %v; want vgg > alexnet > resnet", sizes)
	}
}

func TestByNameAndRoster(t *testing.T) {
	for _, name := range RosterNames() {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("lenet"); err == nil {
		t.Error("expected error for unknown model")
	}
	tiny, err := TinyVariant("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Name != "tiny-resnet50" {
		t.Errorf("TinyVariant = %s", tiny.Name)
	}
	if _, err := TinyVariant("bert"); err == nil {
		t.Error("expected error for unknown tiny variant")
	}
}

func TestTinyMirrorsFullFeatureLayers(t *testing.T) {
	// Every full-scale model and its Tiny variant expose the same feature
	// layer names so experiments can swap between them.
	for _, name := range []string{"alexnet", "vgg16", "resnet50"} {
		full, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tiny, err := TinyVariant(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(full.FeatureLayers) != len(tiny.FeatureLayers) {
			t.Errorf("%s: %d feature layers vs tiny's %d",
				name, len(full.FeatureLayers), len(tiny.FeatureLayers))
			continue
		}
		for i := range full.FeatureLayers {
			if full.FeatureLayers[i].Name != tiny.FeatureLayers[i].Name {
				t.Errorf("%s feature %d: %s vs tiny %s", name, i,
					full.FeatureLayers[i].Name, tiny.FeatureLayers[i].Name)
			}
		}
	}
}

func TestBottleneckProjectionRules(t *testing.T) {
	b := &Bottleneck{LayerName: "b", Mid: 8, Stride: 1}
	// Input channels == 4*Mid and stride 1: identity shortcut, 3 sublayers.
	ls, err := b.sublayers(tensor.Shape{32, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 3 {
		t.Errorf("identity block has %d sublayers, want 3", len(ls))
	}
	// Channel mismatch forces projection.
	ls, err = b.sublayers(tensor.Shape{16, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 4 {
		t.Errorf("projection block has %d sublayers, want 4", len(ls))
	}
	// Stride 2 forces projection too.
	b2 := &Bottleneck{LayerName: "b2", Mid: 8, Stride: 2}
	ls, err = b2.sublayers(tensor.Shape{32, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 4 {
		t.Errorf("strided block has %d sublayers, want 4", len(ls))
	}
}

func TestBottleneckOutShape(t *testing.T) {
	b := &Bottleneck{LayerName: "b", Mid: 16, Stride: 2, Project: true}
	out, err := b.OutShape(tensor.Shape{32, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{64, 4, 4}) {
		t.Errorf("OutShape = %v, want (64,4,4)", out)
	}
	if _, err := b.OutShape(tensor.Shape{32}); err == nil {
		t.Error("expected error for non-CHW input")
	}
}

func TestModelShapeAtErrors(t *testing.T) {
	m := TinyAlexNet()
	if _, err := m.ShapeAt(-2); err == nil {
		t.Error("expected error for index < -1")
	}
	if _, err := m.ShapeAt(len(m.Layers)); err == nil {
		t.Error("expected error for index beyond chain")
	}
	in, err := m.ShapeAt(-1)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(m.InputShape) {
		t.Errorf("ShapeAt(-1) = %v, want input shape %v", in, m.InputShape)
	}
}

func TestSummary(t *testing.T) {
	out, err := Summary(TinyAlexNet())
	if err != nil {
		t.Fatalf("Summary: %v", err)
	}
	for _, want := range []string{"tiny-alexnet", "conv5", "fc8", "feature layer", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Full-scale models summarize too (no weight realization involved).
	if _, err := Summary(ResNet50()); err != nil {
		t.Errorf("ResNet50 summary: %v", err)
	}
	// A model with an incompatible chain reports an error.
	bad := &Model{Name: "bad", InputShape: tensor.Shape{1, 4, 4},
		Layers: []Layer{conv("c", 3, 8, 3, 1, 1)}} // expects 3 channels
	if _, err := Summary(bad); err == nil {
		t.Error("incompatible chain accepted")
	}
}

func TestLayerWeightsSizeBytes(t *testing.T) {
	var nilW *LayerWeights
	if nilW.SizeBytes() != 0 {
		t.Error("nil weights should have zero size")
	}
	w := &LayerWeights{W: make([]float32, 10), B: make([]float32, 2),
		Sub: []*LayerWeights{{W: make([]float32, 5)}}}
	if got, want := w.SizeBytes(), int64((10+2+5)*4); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}
