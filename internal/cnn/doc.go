// Package cnn implements the deep-learning substrate of the Vista
// reproduction: a CNN inference engine with the paper's data model
// (Section 3.1) — layers as TensorOps (Definition 3.3), CNNs as layer
// compositions (Definition 3.4), and partial CNN inference f̂_{i→j}
// (Definition 3.7) — plus a roster of named architectures (AlexNet, VGG16,
// ResNet50) with derived per-layer shapes, FLOPs, and parameter counts used
// by the Vista optimizer.
//
// The roster comes in two scales. The full-scale models (ByName("alexnet"),
// "vgg16", "resnet50") carry the real architectures' layer graphs and are
// used for optimizer and simulator analysis only — realizing their weights
// would be prohibitive in tests. The Tiny* variants ("tiny-alexnet",
// "tiny-vgg16", "tiny-resnet50") preserve each architecture's shape and
// layer kinds at a fraction of the width, and are fully executable:
// Model.RealizeWeights materializes deterministic seeded weights, and
// ComputeStats derives the byte and FLOP accounting either scale feeds into
// the optimizer's memory model (Section 4.1) and the simulator's runtime
// estimates.
//
// WeightsChecksum content-addresses realized weights, which is how the
// feature store (internal/featurestore) keys materialized CNN features to
// the exact model that produced them.
package cnn
