package cnn

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// FeatureGrid is the spatial grid convolutional feature layers are max-pooled
// down to before flattening (Section 5, footnote 4: "reduce the feature
// tensor to a 2x2 grid of the same depth").
const FeatureGrid = 2

// FeatureLayer marks one transfer point in a model: the output of
// Layers[LayerIndex] is a feature layer users may transfer.
type FeatureLayer struct {
	// Name is the layer label used in the paper (e.g. "conv5", "fc7").
	Name string
	// LayerIndex is the index into Model.Layers whose output is this
	// feature layer.
	LayerIndex int
}

// Model is a CNN per Definition 3.4: a chain of TensorOps f(·) ≡
// f_nl(...f_2(f_1(·))...), plus the model's roster metadata — its input shape
// and its transferable feature layers ordered bottom-to-top.
type Model struct {
	// Name is the roster name, e.g. "resnet50".
	Name string
	// InputShape is the CHW image-tensor shape the model expects.
	InputShape tensor.Shape
	// Layers is the layer chain, input to output.
	Layers []Layer
	// FeatureLayers lists the transferable layers bottom-to-top; the
	// paper's set L is a suffix of this list (the |L| top-most entries).
	FeatureLayers []FeatureLayer
}

// ErrNoSuchLayer indicates a feature-layer lookup failure.
var ErrNoSuchLayer = errors.New("cnn: no such feature layer")

// NumLayers returns nl, the number of layers in the chain.
func (m *Model) NumLayers() int { return len(m.Layers) }

// ShapeAt returns the output shape of Layers[idx] (idx == -1 returns the
// input shape). It walks the chain from the input, validating compatibility.
func (m *Model) ShapeAt(idx int) (tensor.Shape, error) {
	if idx < -1 || idx >= len(m.Layers) {
		return nil, fmt.Errorf("cnn: layer index %d out of range [−1,%d)", idx, len(m.Layers))
	}
	s := m.InputShape
	for i := 0; i <= idx; i++ {
		next, err := m.Layers[i].OutShape(s)
		if err != nil {
			return nil, fmt.Errorf("cnn: %s layer %d (%s): %w", m.Name, i, m.Layers[i].Name(), err)
		}
		s = next
	}
	return s, nil
}

// FeatureLayerIndex returns the position of the named feature layer within
// FeatureLayers, or ErrNoSuchLayer.
func (m *Model) FeatureLayerIndex(name string) (int, error) {
	for i, fl := range m.FeatureLayers {
		if fl.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q in model %s", ErrNoSuchLayer, name, m.Name)
}

// TopFeatureLayers returns the k top-most feature layers in bottom-to-top
// order — the paper's L when the user asks for |L| = k layers "starting from
// the top most layer" (Section 3.3).
func (m *Model) TopFeatureLayers(k int) ([]FeatureLayer, error) {
	if k <= 0 || k > len(m.FeatureLayers) {
		return nil, fmt.Errorf("cnn: model %s has %d feature layers; requested %d",
			m.Name, len(m.FeatureLayers), k)
	}
	return m.FeatureLayers[len(m.FeatureLayers)-k:], nil
}

// TotalParams returns the model's total parameter count, derived by walking
// the layer chain.
func (m *Model) TotalParams() (int64, error) {
	var total int64
	s := m.InputShape
	for i, l := range m.Layers {
		total += l.Params(s)
		next, err := l.OutShape(s)
		if err != nil {
			return 0, fmt.Errorf("cnn: %s layer %d (%s): %w", m.Name, i, l.Name(), err)
		}
		s = next
	}
	return total, nil
}

// TotalFLOPs returns the FLOPs of one full inference f(t).
func (m *Model) TotalFLOPs() (int64, error) {
	return m.PartialFLOPs(0, len(m.Layers)-1)
}

// PartialFLOPs returns the FLOPs of partial inference f̂_{from→to}
// (inclusive layer range, Definition 3.7).
func (m *Model) PartialFLOPs(from, to int) (int64, error) {
	if from < 0 || to >= len(m.Layers) || from > to {
		return 0, fmt.Errorf("cnn: invalid layer range [%d,%d] for %s", from, to, m.Name)
	}
	s, err := m.ShapeAt(from - 1)
	if err != nil {
		return 0, err
	}
	var total int64
	for i := from; i <= to; i++ {
		total += m.Layers[i].FLOPs(s)
		if s, err = m.Layers[i].OutShape(s); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// Weights holds a model's realized parameters, one entry per layer.
type Weights struct {
	Layers []*LayerWeights
}

// SizeBytes returns the total in-memory payload of the realized weights.
func (w *Weights) SizeBytes() int64 {
	var n int64
	for _, lw := range w.Layers {
		n += lw.SizeBytes()
	}
	return n
}

// MaxRealizableParams guards against accidentally materializing a full-scale
// model's weights in-process (e.g. VGG16's 138 M parameters). Roster models
// above this limit serve only as sources of shape/FLOP/footprint statistics;
// their Tiny* counterparts are used for real execution.
const MaxRealizableParams = 64 << 20

// RealizeWeights draws deterministic pseudo-random weights for every layer.
// The per-layer RNG is seeded from (seed, layer index), so any contiguous
// partial realization is consistent with the full one.
func (m *Model) RealizeWeights(seed int64) (*Weights, error) {
	params, err := m.TotalParams()
	if err != nil {
		return nil, err
	}
	if params > MaxRealizableParams {
		return nil, fmt.Errorf("cnn: model %s has %d parameters, above the realization limit %d; use its Tiny variant for real execution",
			m.Name, params, int64(MaxRealizableParams))
	}
	w := &Weights{Layers: make([]*LayerWeights, len(m.Layers))}
	s := m.InputShape
	for i, l := range m.Layers {
		rng := rand.New(rand.NewSource(seed*1000003 + int64(i)))
		lw, err := l.InitWeights(s, rng)
		if err != nil {
			return nil, fmt.Errorf("cnn: %s layer %d (%s): %w", m.Name, i, l.Name(), err)
		}
		w.Layers[i] = lw
		if s, err = l.OutShape(s); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Infer computes full CNN inference f(t) (Definition 3.6).
func (m *Model) Infer(w *Weights, in *tensor.Tensor) (*tensor.Tensor, error) {
	return m.PartialInfer(w, in, 0, len(m.Layers)-1)
}

// PartialInfer computes partial CNN inference f̂_{from→to} (Definition 3.7):
// it applies Layers[from..to] (inclusive) to in, which must be
// shape-compatible with Layers[from].
//
// Intermediate activations are recycled into the tensor slab pool as soon as
// the next layer has consumed them, so a batch of rows advancing through the
// same layer range reuses a fixed working set instead of allocating one
// tensor per layer per row. The function input and the returned tensor are
// never recycled, and an intermediate is kept whenever the next layer's
// output aliases its storage (in-place layers).
func (m *Model) PartialInfer(w *Weights, in *tensor.Tensor, from, to int) (*tensor.Tensor, error) {
	if from < 0 || to >= len(m.Layers) || from > to {
		return nil, fmt.Errorf("cnn: invalid layer range [%d,%d] for %s", from, to, m.Name)
	}
	if w == nil || len(w.Layers) != len(m.Layers) {
		return nil, fmt.Errorf("cnn: weights not realized for model %s", m.Name)
	}
	t := in
	for i := from; i <= to; i++ {
		next, err := m.Layers[i].Apply(t, w.Layers[i])
		if err != nil {
			return nil, err
		}
		if t != in && !tensor.SameStorage(next, t) {
			tensor.Recycle(t)
		}
		t = next
	}
	return t, nil
}

// FeatureVector applies g_l ∘ f̂_l to a raw feature tensor that was produced
// at feature layer fl: convolutional (CHW) outputs are grid-max-pooled to a
// FeatureGrid×FeatureGrid grid and flattened; vector outputs pass through.
// This is the paper's g_l FlattenOp with the standard pre-pooling.
func FeatureVector(raw *tensor.Tensor) (*tensor.Tensor, error) {
	if len(raw.Shape()) == 3 {
		pooled, err := tensor.GridMaxPool(raw, FeatureGrid)
		if err != nil {
			return nil, err
		}
		return pooled.Flatten(), nil
	}
	return raw.Flatten(), nil
}

// FeatureDim returns the length of the flattened (post-pooling) feature
// vector for the given feature layer.
func (m *Model) FeatureDim(fl FeatureLayer) (int, error) {
	s, err := m.ShapeAt(fl.LayerIndex)
	if err != nil {
		return 0, err
	}
	if len(s) == 3 {
		s = tensor.GridPooledShape(s, FeatureGrid)
	}
	return s.NumElements(), nil
}

// RawFeatureSize returns the unpooled feature-layer payload in bytes — the
// quantity that drives the paper's intermediate-data blow-up analysis
// (Section 1.1: "10GB of data blows up to 560GB for just one layer").
func (m *Model) RawFeatureSize(fl FeatureLayer) (int64, error) {
	s, err := m.ShapeAt(fl.LayerIndex)
	if err != nil {
		return 0, err
	}
	return int64(s.NumElements()) * 4, nil
}
