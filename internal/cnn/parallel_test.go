package cnn

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tensor"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if sites := faultinject.ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// TestParallelInferSharedModel runs full inference concurrently over one
// shared model and weight set — the server's concurrent-runs shape. Under
// -race it asserts the GEMM worker pool, slab recycling inside PartialInfer,
// and the read-only weight sharing are goroutine-clean; the value check
// asserts concurrent inferences do not contaminate each other's activations.
func TestParallelInferSharedModel(t *testing.T) {
	for _, name := range []string{"tiny-alexnet", "tiny-resnet50", "tiny-densenet"} {
		t.Run(name, func(t *testing.T) {
			m, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w, err := m.RealizeWeights(1)
			if err != nil {
				t.Fatal(err)
			}
			imgs := []*tensor.Tensor{randImage(m, 1), randImage(m, 2), randImage(m, 3)}
			wants := make([]*tensor.Tensor, len(imgs))
			for i, img := range imgs {
				if wants[i], err = m.Infer(w, img); err != nil {
					t.Fatal(err)
				}
			}
			const goroutines = 6
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					for iter := 0; iter < 4; iter++ {
						i := (g + iter) % len(imgs)
						got, err := m.Infer(w, imgs[i])
						if err != nil {
							errs[g] = err
							return
						}
						for j, v := range got.Data() {
							if math.Abs(float64(v-wants[i].Data()[j])) > 1e-4 {
								errs[g] = fmt.Errorf("goroutine %d iter %d: output[%d] = %v, want %v",
									g, iter, j, v, wants[i].Data()[j])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestInferMatchesDirectKernel pins end-to-end model inference between the
// GEMM and direct convolution kernels: same weights, same image, outputs
// within parity tolerance. This is the model-level arm of the escape-hatch
// contract.
func TestInferMatchesDirectKernel(t *testing.T) {
	defer tensor.SetUseDirect(false)
	for _, name := range []string{"tiny-alexnet", "tiny-vgg16", "tiny-resnet50", "tiny-densenet"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := m.RealizeWeights(7)
		if err != nil {
			t.Fatal(err)
		}
		img := randImage(m, 9)
		tensor.SetUseDirect(true)
		direct, err := m.Infer(w, img)
		if err != nil {
			t.Fatal(err)
		}
		tensor.SetUseDirect(false)
		gemm, err := m.Infer(w, img)
		if err != nil {
			t.Fatal(err)
		}
		if !gemm.Shape().Equal(direct.Shape()) {
			t.Fatalf("%s: shape %v vs %v", name, gemm.Shape(), direct.Shape())
		}
		for i, v := range gemm.Data() {
			if math.Abs(float64(v-direct.Data()[i])) > 1e-3 {
				t.Fatalf("%s: output[%d] = %v (gemm) vs %v (direct)", name, i, v, direct.Data()[i])
			}
		}
	}
}
