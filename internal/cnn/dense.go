package cnn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// DenseBlock is a DenseNet-style densely connected block (Huang et al.,
// 2016): each internal convolution consumes the channel-concatenation of the
// block input and every previous convolution's output, and the block emits
// the full concatenation. The paper cites DenseNet as the canonical
// DAG-structured CNN its chain formalism extends to (Definition 3.4,
// footnote 1) and leaves support to future work (Section 5.4); modeling the
// block as one composite Layer keeps the model a chain of TensorOps while
// the DAG lives inside — exactly like Bottleneck.
type DenseBlock struct {
	LayerName string
	// Convs is the number of internal 3×3 convolutions.
	Convs int
	// Growth is the number of channels each convolution adds.
	Growth int
}

// Name implements Layer.
func (d *DenseBlock) Name() string { return d.LayerName }

// convs returns the internal convolution layers for the given input shape.
func (d *DenseBlock) convs(in tensor.Shape) ([]*BNConv, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("%w: dense block %s expects CHW, got %v", tensor.ErrShape, d.LayerName, in)
	}
	if d.Convs <= 0 || d.Growth <= 0 {
		return nil, fmt.Errorf("cnn: dense block %s needs positive convs/growth", d.LayerName)
	}
	out := make([]*BNConv, d.Convs)
	c := in[0]
	for i := range out {
		out[i] = &BNConv{
			LayerName: fmt.Sprintf("%s.conv%d", d.LayerName, i+1),
			ReLU:      true,
			Spec:      tensor.Conv2DSpec{InChannels: c, OutChannels: d.Growth, Kernel: 3, Stride: 1, Pad: 1},
		}
		c += d.Growth
	}
	return out, nil
}

// OutShape implements Layer: input channels plus Convs × Growth.
func (d *DenseBlock) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if _, err := d.convs(in); err != nil {
		return nil, err
	}
	return tensor.Shape{in[0] + d.Convs*d.Growth, in[1], in[2]}, nil
}

// FLOPs implements Layer.
func (d *DenseBlock) FLOPs(in tensor.Shape) int64 {
	convs, err := d.convs(in)
	if err != nil {
		return 0
	}
	var total int64
	s := in.Clone()
	for _, c := range convs {
		total += c.FLOPs(s)
		s[0] += d.Growth // next conv sees the concatenation
	}
	return total
}

// Params implements Layer.
func (d *DenseBlock) Params(in tensor.Shape) int64 {
	convs, err := d.convs(in)
	if err != nil {
		return 0
	}
	var total int64
	for _, c := range convs {
		total += c.Params(nil)
	}
	return total
}

// Apply implements Layer.
func (d *DenseBlock) Apply(in *tensor.Tensor, w *LayerWeights) (*tensor.Tensor, error) {
	convs, err := d.convs(in.Shape())
	if err != nil {
		return nil, err
	}
	if len(w.Sub) != len(convs) {
		return nil, fmt.Errorf("cnn: dense block %s: %d weight sets for %d convs",
			d.LayerName, len(w.Sub), len(convs))
	}
	acc := in
	for i, c := range convs {
		grown, err := c.Apply(acc, w.Sub[i])
		if err != nil {
			return nil, err
		}
		if acc, err = tensor.ConcatChannels(acc, grown); err != nil {
			return nil, fmt.Errorf("cnn: dense block %s: %w", d.LayerName, err)
		}
	}
	return acc, nil
}

// InitWeights implements Layer.
func (d *DenseBlock) InitWeights(in tensor.Shape, rng *rand.Rand) (*LayerWeights, error) {
	convs, err := d.convs(in)
	if err != nil {
		return nil, err
	}
	w := &LayerWeights{Sub: make([]*LayerWeights, len(convs))}
	s := in.Clone()
	for i, c := range convs {
		sw, err := c.InitWeights(s, rng)
		if err != nil {
			return nil, err
		}
		w.Sub[i] = sw
		s[0] += d.Growth
	}
	return w, nil
}

// TinyDenseNet returns an executable DenseNet-style model on 64×64 inputs:
// a stem convolution, two dense blocks separated by a 1×1-conv + pool
// transition, global average pooling, and a classifier head. It demonstrates
// that the roster, the Staged plan, and the optimizer extend to
// DAG-structured CNNs unchanged — the paper's Section 5.4 future-work item.
func TinyDenseNet() *Model {
	layers := []Layer{
		&BNConv{LayerName: "stem", ReLU: true,
			Spec: tensor.Conv2DSpec{InChannels: 3, OutChannels: 16, Kernel: 5, Stride: 2, Pad: 2}}, // 32×32×16
		&MaxPool{LayerName: "pool1", Spec: tensor.PoolSpec{Kernel: 2, Stride: 2}}, // 16×16×16
		&DenseBlock{LayerName: "dense1", Convs: 3, Growth: 8},                     // 16×16×40
		&BNConv{LayerName: "trans1", ReLU: true,
			Spec: tensor.Conv2DSpec{InChannels: 40, OutChannels: 24, Kernel: 1, Stride: 1}},
		&MaxPool{LayerName: "pool2", Spec: tensor.PoolSpec{Kernel: 2, Stride: 2}}, // 8×8×24
		&DenseBlock{LayerName: "dense2", Convs: 3, Growth: 8},                     // 8×8×48
		&GlobalAvgPool{LayerName: "gap"},                                          // 48
		&FC{LayerName: "fc", Units: 32},
	}
	return &Model{
		Name:       "tiny-densenet",
		InputShape: tensor.Shape{3, TinyInputSize, TinyInputSize},
		Layers:     layers,
		FeatureLayers: []FeatureLayer{
			{Name: "dense1", LayerIndex: 2},
			{Name: "dense2", LayerIndex: 5},
			{Name: "gap", LayerIndex: 6},
		},
	}
}
