package cnn

import (
	"testing"
)

func benchInference(b *testing.B, name string) {
	b.Helper()
	m, err := ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	w, err := m.RealizeWeights(1)
	if err != nil {
		b.Fatal(err)
	}
	img := randImage(m, 1)
	flops, err := m.TotalFLOPs()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Infer(w, img); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(flops)/1e6, "MFLOPs/inference")
}

func BenchmarkInferTinyAlexNet(b *testing.B)  { benchInference(b, "tiny-alexnet") }
func BenchmarkInferTinyVGG16(b *testing.B)    { benchInference(b, "tiny-vgg16") }
func BenchmarkInferTinyResNet50(b *testing.B) { benchInference(b, "tiny-resnet50") }

func BenchmarkPartialInferenceFCOnly(b *testing.B) {
	// The Staged plan's incremental stages: fc6 → fc8 of tiny-alexnet.
	m := TinyAlexNet()
	w, err := m.RealizeWeights(1)
	if err != nil {
		b.Fatal(err)
	}
	img := randImage(m, 2)
	conv5 := m.FeatureLayers[0]
	mid, err := m.PartialInfer(w, img, 0, conv5.LayerIndex)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PartialInfer(w, mid, conv5.LayerIndex+1, m.NumLayers()-1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeStatsFullRoster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"alexnet", "vgg16", "resnet50"} {
			m, err := ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ComputeStats(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}
