package cnn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is a TensorOp (Definition 3.3): a function from a tensor of a fixed
// shape to a tensor of a (potentially different) fixed shape. Layers also
// report the metadata Vista's optimizer needs: output shape, floating-point
// operation count, and parameter count, all as functions of the input shape.
type Layer interface {
	// Name identifies the layer within its model (e.g. "conv5", "fc6").
	Name() string
	// OutShape returns the output shape for the given input shape, or an
	// error if the input is not shape-compatible (Definition 3.3).
	OutShape(in tensor.Shape) (tensor.Shape, error)
	// FLOPs returns the number of floating-point operations one forward
	// application performs on an input of the given shape.
	FLOPs(in tensor.Shape) int64
	// Params returns the number of learned parameters (weights + biases)
	// for an input of the given shape.
	Params(in tensor.Shape) int64
	// Apply runs the layer on in using the realized weights w.
	Apply(in *tensor.Tensor, w *LayerWeights) (*tensor.Tensor, error)
	// InitWeights draws the layer's weights for the given input shape from
	// rng (He initialization for weights, zeros for biases).
	InitWeights(in tensor.Shape, rng *rand.Rand) (*LayerWeights, error)
}

// LayerWeights holds one layer's realized parameters. Composite layers (e.g.
// ResNet bottleneck blocks) store their sublayers' weights in Sub.
type LayerWeights struct {
	W, B                   []float32
	Gamma, Beta, Mean, Var []float32
	Sub                    []*LayerWeights
}

// SizeBytes returns the in-memory payload of the weights (4 B per float32),
// including sublayers.
func (w *LayerWeights) SizeBytes() int64 {
	if w == nil {
		return 0
	}
	n := int64(len(w.W)+len(w.B)+len(w.Gamma)+len(w.Beta)+len(w.Mean)+len(w.Var)) * 4
	for _, s := range w.Sub {
		n += s.SizeBytes()
	}
	return n
}

// heInit fills dst with He-initialized values: N(0, sqrt(2/fanIn)).
func heInit(dst []float32, fanIn int, rng *rand.Rand) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range dst {
		dst[i] = float32(rng.NormFloat64() * std)
	}
}

// Conv is a convolutional layer with optional fused ReLU.
type Conv struct {
	LayerName string
	Spec      tensor.Conv2DSpec
	ReLU      bool
}

// Name implements Layer.
func (c *Conv) Name() string { return c.LayerName }

// OutShape implements Layer.
func (c *Conv) OutShape(in tensor.Shape) (tensor.Shape, error) { return c.Spec.OutShape(in) }

// FLOPs implements Layer: 2·K²·Cin multiply-adds per output element.
func (c *Conv) FLOPs(in tensor.Shape) int64 {
	out, err := c.Spec.OutShape(in)
	if err != nil {
		return 0
	}
	perOut := int64(2 * c.Spec.Kernel * c.Spec.Kernel * c.Spec.InChannels)
	return perOut * int64(out.NumElements())
}

// Params implements Layer.
func (c *Conv) Params(tensor.Shape) int64 {
	return int64(c.Spec.WeightCount() + c.Spec.OutChannels)
}

// Apply implements Layer.
func (c *Conv) Apply(in *tensor.Tensor, w *LayerWeights) (*tensor.Tensor, error) {
	out, err := tensor.Conv2D(in, c.Spec, w.W, w.B)
	if err != nil {
		return nil, fmt.Errorf("cnn: layer %s: %w", c.LayerName, err)
	}
	if c.ReLU {
		tensor.ReLU(out)
	}
	return out, nil
}

// InitWeights implements Layer.
func (c *Conv) InitWeights(in tensor.Shape, rng *rand.Rand) (*LayerWeights, error) {
	if _, err := c.Spec.OutShape(in); err != nil {
		return nil, err
	}
	w := &LayerWeights{
		W: make([]float32, c.Spec.WeightCount()),
		B: make([]float32, c.Spec.OutChannels),
	}
	heInit(w.W, c.Spec.InChannels*c.Spec.Kernel*c.Spec.Kernel, rng)
	return w, nil
}

// MaxPool is a max-pooling layer.
type MaxPool struct {
	LayerName string
	Spec      tensor.PoolSpec
}

// Name implements Layer.
func (p *MaxPool) Name() string { return p.LayerName }

// OutShape implements Layer.
func (p *MaxPool) OutShape(in tensor.Shape) (tensor.Shape, error) { return p.Spec.OutShape(in) }

// FLOPs implements Layer: one comparison per window element.
func (p *MaxPool) FLOPs(in tensor.Shape) int64 {
	out, err := p.Spec.OutShape(in)
	if err != nil {
		return 0
	}
	return int64(p.Spec.Kernel*p.Spec.Kernel) * int64(out.NumElements())
}

// Params implements Layer.
func (p *MaxPool) Params(tensor.Shape) int64 { return 0 }

// Apply implements Layer.
func (p *MaxPool) Apply(in *tensor.Tensor, _ *LayerWeights) (*tensor.Tensor, error) {
	out, err := tensor.MaxPool2D(in, p.Spec)
	if err != nil {
		return nil, fmt.Errorf("cnn: layer %s: %w", p.LayerName, err)
	}
	return out, nil
}

// InitWeights implements Layer (pooling has no parameters).
func (p *MaxPool) InitWeights(in tensor.Shape, _ *rand.Rand) (*LayerWeights, error) {
	if _, err := p.Spec.OutShape(in); err != nil {
		return nil, err
	}
	return &LayerWeights{}, nil
}

// GlobalAvgPool reduces a CHW input to a length-C vector (ResNet-style head).
type GlobalAvgPool struct {
	LayerName string
}

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.LayerName }

// OutShape implements Layer.
func (g *GlobalAvgPool) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("%w: global avg pool expects CHW, got %v", tensor.ErrShape, in)
	}
	return tensor.Shape{in[0]}, nil
}

// FLOPs implements Layer.
func (g *GlobalAvgPool) FLOPs(in tensor.Shape) int64 { return int64(in.NumElements()) }

// Params implements Layer.
func (g *GlobalAvgPool) Params(tensor.Shape) int64 { return 0 }

// Apply implements Layer.
func (g *GlobalAvgPool) Apply(in *tensor.Tensor, _ *LayerWeights) (*tensor.Tensor, error) {
	return tensor.GlobalAvgPool(in)
}

// InitWeights implements Layer.
func (g *GlobalAvgPool) InitWeights(in tensor.Shape, _ *rand.Rand) (*LayerWeights, error) {
	if _, err := g.OutShape(in); err != nil {
		return nil, err
	}
	return &LayerWeights{}, nil
}

// FC is a fully connected layer; it flattens its input and applies
// out = W·flatten(in) + b, with optional fused ReLU.
type FC struct {
	LayerName string
	Units     int
	ReLU      bool
}

// Name implements Layer.
func (f *FC) Name() string { return f.LayerName }

// OutShape implements Layer.
func (f *FC) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if !in.Valid() {
		return nil, fmt.Errorf("%w: fc input %v", tensor.ErrShape, in)
	}
	return tensor.Shape{f.Units}, nil
}

// FLOPs implements Layer: 2 ops per weight.
func (f *FC) FLOPs(in tensor.Shape) int64 {
	return 2 * int64(in.NumElements()) * int64(f.Units)
}

// Params implements Layer.
func (f *FC) Params(in tensor.Shape) int64 {
	return int64(in.NumElements())*int64(f.Units) + int64(f.Units)
}

// Apply implements Layer.
func (f *FC) Apply(in *tensor.Tensor, w *LayerWeights) (*tensor.Tensor, error) {
	x := in.Flatten()
	cols := x.NumElements()
	out, err := tensor.MatVec(w.W, f.Units, cols, x.Data(), w.B)
	if err != nil {
		return nil, fmt.Errorf("cnn: layer %s: %w", f.LayerName, err)
	}
	t := tensor.MustFromSlice(out, f.Units)
	if f.ReLU {
		tensor.ReLU(t)
	}
	return t, nil
}

// InitWeights implements Layer.
func (f *FC) InitWeights(in tensor.Shape, rng *rand.Rand) (*LayerWeights, error) {
	cols := in.NumElements()
	w := &LayerWeights{
		W: make([]float32, f.Units*cols),
		B: make([]float32, f.Units),
	}
	heInit(w.W, cols, rng)
	return w, nil
}

// BNConv is a convolution followed by batch normalization with optional fused
// ReLU; the building block of ResNet architectures.
type BNConv struct {
	LayerName string
	Spec      tensor.Conv2DSpec
	ReLU      bool
}

// Name implements Layer.
func (c *BNConv) Name() string { return c.LayerName }

// OutShape implements Layer.
func (c *BNConv) OutShape(in tensor.Shape) (tensor.Shape, error) { return c.Spec.OutShape(in) }

// FLOPs implements Layer: conv FLOPs plus 2 ops per output element for the
// batch-norm affine transform.
func (c *BNConv) FLOPs(in tensor.Shape) int64 {
	out, err := c.Spec.OutShape(in)
	if err != nil {
		return 0
	}
	perOut := int64(2 * c.Spec.Kernel * c.Spec.Kernel * c.Spec.InChannels)
	return (perOut + 2) * int64(out.NumElements())
}

// Params implements Layer: filter weights plus 4 batch-norm vectors (no conv
// bias; the BN shift subsumes it, as in the reference ResNet).
func (c *BNConv) Params(tensor.Shape) int64 {
	return int64(c.Spec.WeightCount() + 4*c.Spec.OutChannels)
}

// Apply implements Layer.
func (c *BNConv) Apply(in *tensor.Tensor, w *LayerWeights) (*tensor.Tensor, error) {
	out, err := tensor.Conv2D(in, c.Spec, w.W, w.B)
	if err != nil {
		return nil, fmt.Errorf("cnn: layer %s: %w", c.LayerName, err)
	}
	if err := tensor.BatchNorm(out, w.Gamma, w.Beta, w.Mean, w.Var, 1e-5); err != nil {
		return nil, fmt.Errorf("cnn: layer %s: %w", c.LayerName, err)
	}
	if c.ReLU {
		tensor.ReLU(out)
	}
	return out, nil
}

// InitWeights implements Layer.
func (c *BNConv) InitWeights(in tensor.Shape, rng *rand.Rand) (*LayerWeights, error) {
	if _, err := c.Spec.OutShape(in); err != nil {
		return nil, err
	}
	oc := c.Spec.OutChannels
	w := &LayerWeights{
		W:     make([]float32, c.Spec.WeightCount()),
		B:     make([]float32, oc), // zero bias; BN shift handles offsets
		Gamma: make([]float32, oc),
		Beta:  make([]float32, oc),
		Mean:  make([]float32, oc),
		Var:   make([]float32, oc),
	}
	heInit(w.W, c.Spec.InChannels*c.Spec.Kernel*c.Spec.Kernel, rng)
	for i := 0; i < oc; i++ {
		w.Gamma[i] = 1
		w.Var[i] = 1
	}
	return w, nil
}
