package dataflow

import (
	"testing"

	"repro/internal/tensor"
)

// FuzzDecodeRows hardens the Tungsten-style row codec against malformed
// blobs: decoding must never panic, and every successful decode must
// re-encode to an equivalent row set.
func FuzzDecodeRows(f *testing.F) {
	seedRows := [][]Row{
		{{ID: 1, Label: 1, Structured: []float32{1, 2}, Image: []byte{3}}},
		{{ID: 2, Features: tensor.NewTensorList(tensor.New(2, 2))}},
		{},
	}
	for _, rows := range seedRows {
		blob, err := EncodeRows(rows)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, blob []byte) {
		rows, err := DecodeRows(blob)
		if err != nil {
			return // malformed input is fine, panics are not
		}
		re, err := EncodeRows(rows)
		if err != nil {
			t.Fatalf("re-encode of decoded rows failed: %v", err)
		}
		again, err := DecodeRows(re)
		if err != nil {
			t.Fatalf("decode of re-encode failed: %v", err)
		}
		if len(again) != len(rows) {
			t.Fatalf("row count changed: %d vs %d", len(again), len(rows))
		}
	})
}
