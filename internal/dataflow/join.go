package dataflow

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/tensor"
)

// JoinKind selects the physical join operator (Section 4.2.3; Table 1(B):
// join).
type JoinKind int

// Physical join operators.
const (
	// ShuffleJoin hashes both tables on the join key into shuffle blocks,
	// sends each block to its worker, and joins locally.
	ShuffleJoin JoinKind = iota
	// BroadcastJoin replicates the smaller table to every worker and
	// probes it with the outer table, avoiding shuffles.
	BroadcastJoin
)

// String implements fmt.Stringer.
func (k JoinKind) String() string {
	if k == BroadcastJoin {
		return "broadcast"
	}
	return "shuffle"
}

// mergeRows combines the payloads of a structured row and an image/feature
// row sharing an ID: structured features from left, image and features from
// right, label from whichever side carries one (left wins).
func mergeRows(left, right *Row) Row {
	out := Row{ID: left.ID, Label: left.Label, Structured: left.Structured}
	if out.Structured == nil {
		out.Structured = right.Structured
	}
	out.Image = right.Image
	if out.Image == nil {
		out.Image = left.Image
	}
	switch {
	case left.Features != nil && right.Features != nil:
		merged := tensor.NewTensorList()
		for i := 0; i < left.Features.Len(); i++ {
			merged.Append(left.Features.Get(i))
		}
		for i := 0; i < right.Features.Len(); i++ {
			merged.Append(right.Features.Get(i))
		}
		out.Features = merged
	case left.Features != nil:
		out.Features = left.Features
	default:
		out.Features = right.Features
	}
	return out
}

// Join performs a key-key inner join of left and right on ID (the workload's
// step (3): T' ← Tstr ⋈ T'img) using the chosen physical operator, producing
// a new cached table partitioned like the left input for shuffle joins and
// like the right input for broadcast joins.
func (e *Engine) Join(name string, left, right *Table, kind JoinKind) (*Table, error) {
	switch kind {
	case ShuffleJoin:
		return e.shuffleJoin(name, left, right)
	case BroadcastJoin:
		return e.broadcastJoin(name, left, right)
	}
	return nil, fmt.Errorf("dataflow: unknown join kind %d", int(kind))
}

// shuffleJoin aligns both tables to a common partitioning, then joins each
// partition pair locally with a hash join whose build side is charged to
// Core Memory (crash scenario 3 for oversized partitions).
func (e *Engine) shuffleJoin(name string, left, right *Table) (*Table, error) {
	np := left.NumPartitions()
	r := right
	if right.NumPartitions() != np {
		// Both sides must agree on partitioning; re-shuffle the right side.
		rp, err := e.Repartition(right.Name+".shuffled", right, np)
		if err != nil {
			return nil, err
		}
		defer rp.Drop()
		r = rp
	} else {
		// Aligned hash partitioning still moves each side's blocks to the
		// joining worker once in a real cluster; account the smaller side.
		e.counters.BytesShuffled.Add(min64(left.MemBytes(), right.MemBytes()))
	}

	out := &Table{Name: name, engine: e, partitions: make([]*Partition, np)}
	err := e.runTasks(np, func(tc *TaskContext) error {
		node := e.nodeFor(tc.Part)
		buildRows, err := node.storage.touch(r.partitions[tc.Part])
		if err != nil {
			return err
		}
		buildBytes := rowsMemBytes(buildRows)
		if err := node.core.Alloc(buildBytes, fmt.Sprintf("hash-join build partition %d", tc.Part)); err != nil {
			return err
		}
		defer node.core.Free(buildBytes)

		build := make(map[int64]*Row, len(buildRows))
		for i := range buildRows {
			build[buildRows[i].ID] = &buildRows[i]
		}
		probeRows, err := node.storage.touch(left.partitions[tc.Part])
		if err != nil {
			return err
		}
		joined := make([]Row, 0, len(probeRows))
		for i := range probeRows {
			if match, ok := build[probeRows[i].ID]; ok {
				joined = append(joined, mergeRows(&probeRows[i], match))
			}
		}
		e.counters.RowsProcessed.Add(int64(len(probeRows)))
		p := newPartition(tc.Part, joined)
		if err := node.storage.add(p); err != nil {
			return err
		}
		out.partitions[tc.Part] = p
		return nil
	})
	if err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// broadcastJoin replicates the left (smaller) table to every node — charging
// each node's User Memory for the broadcast hash table — and probes it with
// the right table's partitions locally. This reproduces the paper's
// Figure 10 behavior: broadcast is faster at modest sizes but crashes as the
// broadcast side grows.
func (e *Engine) broadcastJoin(name string, small, large *Table) (*Table, error) {
	rows, err := e.collectForBroadcast(small)
	if err != nil {
		return nil, err
	}
	bcastBytes := rowsMemBytes(rows)
	// The driver serializes and ships the broadcast once per node.
	e.counters.BytesBroadcast.Add(bcastBytes * int64(len(e.nodes)))

	// Charge every node up front; release on completion.
	charged := make([]*node, 0, len(e.nodes))
	release := func() {
		for _, n := range charged {
			n.user.Free(bcastBytes)
		}
	}
	for _, n := range e.nodes {
		if err := n.user.Alloc(bcastBytes, fmt.Sprintf("broadcast %s (%s)", small.Name, memory.FormatBytes(bcastBytes))); err != nil {
			release()
			return nil, err
		}
		charged = append(charged, n)
	}
	defer release()

	build := make(map[int64]*Row, len(rows))
	for i := range rows {
		build[rows[i].ID] = &rows[i]
	}

	out := &Table{Name: name, engine: e, partitions: make([]*Partition, large.NumPartitions())}
	err = e.runTasks(large.NumPartitions(), func(tc *TaskContext) error {
		node := e.nodeFor(tc.Part)
		probeRows, err := node.storage.touch(large.partitions[tc.Part])
		if err != nil {
			return err
		}
		joined := make([]Row, 0, len(probeRows))
		for i := range probeRows {
			if match, ok := build[probeRows[i].ID]; ok {
				joined = append(joined, mergeRows(match, &probeRows[i]))
			}
		}
		e.counters.RowsProcessed.Add(int64(len(probeRows)))
		p := newPartition(tc.Part, joined)
		if err := node.storage.add(p); err != nil {
			return err
		}
		out.partitions[tc.Part] = p
		return nil
	})
	if err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// collectForBroadcast gathers the broadcast side at the driver, charging
// driver memory (a broadcast that kills the driver is crash scenario 4).
func (e *Engine) collectForBroadcast(t *Table) ([]Row, error) {
	var all []Row
	var total int64
	for _, p := range t.partitions {
		rows, err := e.nodeFor(p.index).storage.touch(p)
		if err != nil {
			return nil, err
		}
		for i := range rows {
			total += rows[i].MemBytes()
		}
		all = append(all, rows...)
	}
	if err := e.driver.Alloc(total, fmt.Sprintf("broadcast build of %s", t.Name)); err != nil {
		return nil, err
	}
	e.driver.Free(total)
	return all, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
