package dataflow

import (
	"testing"

	"repro/internal/memory"
)

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	e, err := NewEngine(Config{
		Nodes: 2, CoresPerNode: 2, Kind: memory.SparkLike,
		Apportion: memory.Apportionment{
			DLExecution: memory.MB(64), User: memory.GB(1),
			Core: memory.GB(1), Storage: memory.GB(2),
		},
		SpillDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

func BenchmarkRowCodec(b *testing.B) {
	rows := makeRows(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := EncodeRows(rows)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeRows(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShuffleJoin(b *testing.B) {
	e := benchEngine(b)
	left, err := e.CreateTable("l", makeRows(2000, 20), 8)
	if err != nil {
		b.Fatal(err)
	}
	rightRows := makeRows(2000, 0)
	for i := range rightRows {
		rightRows[i].Image = []byte{1, 2, 3}
	}
	right, err := e.CreateTable("r", rightRows, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Join("j", left, right, ShuffleJoin)
		if err != nil {
			b.Fatal(err)
		}
		out.Drop()
	}
}

func BenchmarkBroadcastJoin(b *testing.B) {
	e := benchEngine(b)
	left, err := e.CreateTable("l", makeRows(200, 20), 8)
	if err != nil {
		b.Fatal(err)
	}
	right, err := e.CreateTable("r", makeRows(2000, 5), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Join("j", left, right, BroadcastJoin)
		if err != nil {
			b.Fatal(err)
		}
		out.Drop()
	}
}

func BenchmarkMapPartitions(b *testing.B) {
	e := benchEngine(b)
	t, err := e.CreateTable("t", makeRows(5000, 50), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.MapPartitions("m", t, func(_ *TaskContext, in []Row) ([]Row, error) {
			return in, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		out.Drop()
	}
}

func BenchmarkSpillRoundTrip(b *testing.B) {
	// Storage pressure forces spill + unspill on every pass.
	e, err := NewEngine(Config{
		Nodes: 1, CoresPerNode: 2, Kind: memory.SparkLike,
		Apportion: memory.Apportionment{
			User: memory.GB(1), Core: memory.GB(1), Storage: memory.MB(0.5),
		},
		SpillDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	t, err := e.CreateTable("t", makeRows(2000, 100), 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Collect(t); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(e.Counters().Snapshot().BytesSpilled)/float64(b.N), "spill-bytes/op")
}
