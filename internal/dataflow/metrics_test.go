package dataflow

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestRegisterMetricsExposition checks the engine's series names, labels,
// and values in a rendered scrape.
func TestRegisterMetricsExposition(t *testing.T) {
	e := newTestEngine(t, testConfig())
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)

	tb, err := e.CreateTable("t", makeRows(100, 4), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Drop()
	out2, err := e.MapPartitions("m", tb, func(_ *TaskContext, in []Row) ([]Row, error) {
		return in, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out2.Drop()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE vista_engine_tasks_total counter",
		"# TYPE vista_pool_used_bytes gauge",
		`vista_pool_used_bytes{node="0",pool="storage"}`,
		`vista_pool_used_bytes{node="1",pool="dl"}`,
		`vista_pool_capacity_bytes{node="driver",pool="driver"} 2.68435456e+08`,
		"vista_engine_rows_processed_total 100",
		"vista_engine_spills_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// The storage gauges read the live cache: with a table cached, both
	// nodes report 0 only if nothing was charged at all.
	if e.StorageUsed() == 0 {
		t.Fatal("expected cached bytes behind the storage gauges")
	}
}

// TestEngineMetricsConcurrentScrape hammers a registered engine with
// parallel tasks while scraping /metrics-style, for the race detector: the
// func-backed series read the engine's atomics and pools mid-run.
func TestEngineMetricsConcurrentScrape(t *testing.T) {
	e := newTestEngine(t, testConfig())
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)

	tb, err := e.CreateTable("t", makeRows(500, 20), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Drop()

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := reg.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if !strings.Contains(b.String(), "vista_engine_tasks_total") {
					t.Error("scrape lost the engine series")
					return
				}
			}
		}
	}()

	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 5; i++ {
				out, err := e.MapPartitions("m", tb, func(tc *TaskContext, in []Row) ([]Row, error) {
					if err := tc.AllocUser(1024, "udf scratch"); err != nil {
						return nil, err
					}
					defer tc.FreeUser(1024)
					tc.AddFLOPs(int64(len(in)))
					return in, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				out.Drop()
			}
		}()
	}
	workers.Wait()
	close(stop)
	scraper.Wait()

	if got := e.Counters().TasksRun.Load(); got < 8 {
		t.Errorf("TasksRun = %d after concurrent maps", got)
	}
}
