package dataflow

import (
	"fmt"
	"sort"
)

// Table is a distributed collection of rows split into partitions, each owned
// by one worker node (partition i lives on node i mod Nodes).
type Table struct {
	Name       string
	engine     *Engine
	partitions []*Partition
}

// NumPartitions returns np for this table.
func (t *Table) NumPartitions() int { return len(t.partitions) }

// NumRows counts rows across all partitions (may read spilled data).
func (t *Table) NumRows() (int, error) {
	total := 0
	for _, p := range t.partitions {
		n, err := p.NumRows()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// MemBytes returns the table's current Storage Memory charge.
func (t *Table) MemBytes() int64 {
	var n int64
	for _, p := range t.partitions {
		n += p.MemBytes()
	}
	return n
}

// CreateTable ingests rows into a new cached table with np hash partitions on
// ID. It counts the rows' payload as input bytes read. Ingestion runs on the
// driver (no tasks), so the run context is checked once up front.
func (e *Engine) CreateTable(name string, rows []Row, np int) (*Table, error) {
	if np <= 0 {
		return nil, fmt.Errorf("dataflow: table %s: np must be positive, got %d", name, np)
	}
	if err := e.context().Err(); err != nil {
		return nil, err
	}
	buckets := make([][]Row, np)
	var readBytes int64
	for _, r := range rows {
		b := int(uint64(r.ID) % uint64(np))
		buckets[b] = append(buckets[b], r)
		readBytes += r.MemBytes()
	}
	e.counters.BytesRead.Add(readBytes)
	t := &Table{Name: name, engine: e, partitions: make([]*Partition, np)}
	for i, b := range buckets {
		p := newPartition(i, b)
		if err := e.nodeFor(i).storage.add(p); err != nil {
			// Release the partitions already admitted: a failed ingest must
			// not leave storage charges (or spill files) behind.
			t.Drop()
			return nil, fmt.Errorf("dataflow: ingest %s: %w", name, err)
		}
		t.partitions[i] = p
	}
	return t, nil
}

// PartitionFunc transforms one partition's rows. The input slice is
// read-only; returning a new slice is required when rows change.
type PartitionFunc func(tc *TaskContext, in []Row) ([]Row, error)

// MapPartitions applies fn to every partition in parallel, producing a new
// cached table. The UDF's working set — the input partition plus its output —
// is charged to User Memory for the task's duration, reproducing crash
// scenarios 2 and 3 for oversized partitions or feature blow-ups.
func (e *Engine) MapPartitions(name string, t *Table, fn PartitionFunc) (*Table, error) {
	out := &Table{Name: name, engine: e, partitions: make([]*Partition, len(t.partitions))}
	err := e.runTasks(len(t.partitions), func(tc *TaskContext) error {
		in := t.partitions[tc.Part]
		node := e.nodeFor(tc.Part)
		rows, err := node.storage.touch(in)
		if err != nil {
			return err
		}
		inBytes := rowsMemBytes(rows)
		if err := node.user.Alloc(inBytes, fmt.Sprintf("udf input partition %d", tc.Part)); err != nil {
			return err
		}
		defer node.user.Free(inBytes)

		outRows, err := fn(tc, rows)
		if err != nil {
			return err
		}
		outBytes := rowsMemBytes(outRows)
		if err := node.user.Alloc(outBytes, fmt.Sprintf("udf output partition %d", tc.Part)); err != nil {
			return err
		}
		defer node.user.Free(outBytes)

		e.counters.RowsProcessed.Add(int64(len(rows)))
		p := newPartition(tc.Part, outRows)
		if err := node.storage.add(p); err != nil {
			return err
		}
		out.partitions[tc.Part] = p
		return nil
	})
	if err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// Map applies fn to every row.
func (e *Engine) Map(name string, t *Table, fn func(tc *TaskContext, r Row) (Row, error)) (*Table, error) {
	return e.MapPartitions(name, t, func(tc *TaskContext, in []Row) ([]Row, error) {
		out := make([]Row, 0, len(in))
		for i := range in {
			r, err := fn(tc, in[i])
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	})
}

// Filter keeps rows for which pred returns true.
func (e *Engine) Filter(name string, t *Table, pred func(r *Row) bool) (*Table, error) {
	return e.MapPartitions(name, t, func(_ *TaskContext, in []Row) ([]Row, error) {
		var out []Row
		for i := range in {
			if pred(&in[i]) {
				out = append(out, in[i])
			}
		}
		return out, nil
	})
}

// Repartition redistributes a table into np hash partitions on ID, shuffling
// every byte across the cluster.
func (e *Engine) Repartition(name string, t *Table, np int) (*Table, error) {
	if np <= 0 {
		return nil, fmt.Errorf("dataflow: repartition %s: np must be positive, got %d", name, np)
	}
	buckets := make([][]Row, np)
	for _, p := range t.partitions {
		rows, err := e.nodeFor(p.index).storage.touch(p)
		if err != nil {
			return nil, err
		}
		for i := range rows {
			b := int(uint64(rows[i].ID) % uint64(np))
			buckets[b] = append(buckets[b], rows[i])
			e.counters.BytesShuffled.Add(rows[i].MemBytes())
		}
	}
	out := &Table{Name: name, engine: e, partitions: make([]*Partition, np)}
	for i, b := range buckets {
		p := newPartition(i, b)
		if err := e.nodeFor(i).storage.add(p); err != nil {
			out.Drop()
			return nil, err
		}
		out.partitions[i] = p
	}
	return out, nil
}

// ForEachPartition runs fn over every partition in parallel without
// producing a new table — the primitive downstream training loops use to
// aggregate gradients. Input partitions are charged to User Memory for the
// task's duration, like MapPartitions.
func (e *Engine) ForEachPartition(t *Table, fn func(tc *TaskContext, rows []Row) error) error {
	return e.runTasks(len(t.partitions), func(tc *TaskContext) error {
		node := e.nodeFor(tc.Part)
		rows, err := node.storage.touch(t.partitions[tc.Part])
		if err != nil {
			return err
		}
		inBytes := rowsMemBytes(rows)
		if err := node.user.Alloc(inBytes, fmt.Sprintf("aggregate input partition %d", tc.Part)); err != nil {
			return err
		}
		defer node.user.Free(inBytes)
		e.counters.RowsProcessed.Add(int64(len(rows)))
		return fn(tc, rows)
	})
}

// Collect gathers all rows at the driver, sorted by ID. The result is charged
// against Driver memory — crash scenario 4 for oversized collects.
func (e *Engine) Collect(t *Table) ([]Row, error) {
	var all []Row
	var total int64
	for _, p := range t.partitions {
		rows, err := e.nodeFor(p.index).storage.touch(p)
		if err != nil {
			return nil, err
		}
		for i := range rows {
			total += rows[i].MemBytes()
		}
		all = append(all, rows...)
	}
	if err := e.driver.Alloc(total, fmt.Sprintf("collect %s (%d rows)", t.Name, len(all))); err != nil {
		return nil, err
	}
	e.driver.Free(total) // the caller owns the data beyond this accounting probe
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, nil
}

// Drop removes the table from all caches and deletes its spill files.
func (t *Table) Drop() {
	if t == nil || t.engine == nil {
		return
	}
	for _, p := range t.partitions {
		if p != nil {
			t.engine.nodeFor(p.index).storage.drop(p)
		}
	}
	t.partitions = nil
}

// PartitionRows exposes one partition's rows for tests and local training
// loops (read-only).
func (t *Table) PartitionRows(i int) ([]Row, error) {
	if i < 0 || i >= len(t.partitions) {
		return nil, fmt.Errorf("dataflow: partition %d out of range [0,%d)", i, len(t.partitions))
	}
	return t.engine.nodeFor(i).storage.touch(t.partitions[i])
}
