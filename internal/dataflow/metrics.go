package dataflow

import (
	"strconv"
	"sync/atomic"

	"repro/internal/memory"
	"repro/internal/obs"
)

// RegisterMetrics exports the engine's counters and every node's memory-pool
// usage into reg. Counter series are func-backed reads of the engine's
// atomics (zero per-update cost) and pool gauges read the pools at scrape
// time, so a /metrics scrape observes a run in flight. Engines are per-run;
// re-registering a fresh engine replaces the previous run's series (the
// registry's func-replace contract), so a long-lived registry always shows
// the most recent engine.
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	c := &e.counters
	counter := func(name, help string, v *atomic.Int64) {
		reg.CounterFunc("vista_engine_"+name, help, func() float64 { return float64(v.Load()) })
	}
	counter("tasks_total", "Tasks executed by the dataflow engine.", &c.TasksRun)
	counter("rows_processed_total", "Rows that flowed through operators.", &c.RowsProcessed)
	counter("bytes_shuffled_total", "Bytes moved between nodes by shuffle joins and repartitioning.", &c.BytesShuffled)
	counter("bytes_broadcast_total", "Bytes replicated to every node by broadcast joins.", &c.BytesBroadcast)
	counter("bytes_spilled_total", "Bytes written to spill files under storage pressure.", &c.BytesSpilled)
	counter("bytes_unspilled_total", "Bytes read back from spill files.", &c.BytesUnspilled)
	counter("spills_total", "Partition evictions to disk.", &c.Spills)
	counter("unspills_total", "Partitions read back from disk.", &c.Unspills)
	counter("bytes_read_total", "Input bytes ingested into base tables.", &c.BytesRead)
	counter("flops_total", "Floating-point work reported by UDFs.", &c.FLOPs)
	reg.GaugeFunc("vista_engine_peak_storage_bytes",
		"High-water mark of cached partition bytes across all nodes.",
		func() float64 { return float64(c.PeakStorageBytes.Load()) })

	pool := func(node string, name string, p *memory.Pool) {
		labels := []obs.Label{{Key: "node", Value: node}, {Key: "pool", Value: name}}
		reg.GaugeFunc("vista_pool_used_bytes",
			"Bytes currently charged against the memory pool.",
			func() float64 { return float64(p.Used()) }, labels...)
		reg.GaugeFunc("vista_pool_capacity_bytes",
			"The memory pool's capacity.",
			func() float64 { return float64(p.Capacity()) }, labels...)
		reg.GaugeFunc("vista_pool_peak_bytes",
			"High-water mark of bytes charged against the memory pool.",
			func() float64 { return float64(p.Peak()) }, labels...)
	}
	for _, n := range e.nodes {
		id := strconv.Itoa(n.id)
		pool(id, "storage", n.storage.pool)
		pool(id, "user", n.user)
		pool(id, "core", n.core)
		pool(id, "dl", n.dl)
	}
	pool("driver", "driver", e.driver)
}
