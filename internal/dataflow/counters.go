package dataflow

import "sync/atomic"

// Counters instruments an engine run. All fields are updated atomically by
// tasks; read them after the run completes. They feed the experiment
// harnesses (e.g. Figure 15 compares Equation 16 estimates against measured
// intermediate sizes) and validate the analytical simulator.
type Counters struct {
	// TasksRun counts executed tasks.
	TasksRun atomic.Int64
	// RowsProcessed counts rows that flowed through operators.
	RowsProcessed atomic.Int64
	// BytesShuffled counts bytes moved between nodes by shuffle joins and
	// repartitioning.
	BytesShuffled atomic.Int64
	// BytesBroadcast counts bytes replicated to every node by broadcast
	// joins.
	BytesBroadcast atomic.Int64
	// BytesSpilled counts bytes written to spill files under storage
	// pressure.
	BytesSpilled atomic.Int64
	// BytesUnspilled counts bytes read back from spill files.
	BytesUnspilled atomic.Int64
	// Spills counts partition evictions to disk (the event count behind
	// BytesSpilled; scrape-side rate() needs both).
	Spills atomic.Int64
	// Unspills counts partitions read back from disk.
	Unspills atomic.Int64
	// BytesRead counts input bytes ingested into base tables.
	BytesRead atomic.Int64
	// FLOPs counts floating-point work reported by UDFs (CNN inference and
	// downstream training).
	FLOPs atomic.Int64
	// PeakStorageBytes tracks the high-water mark of cached partition
	// bytes across all nodes.
	PeakStorageBytes atomic.Int64
}

// Snapshot is a plain-value copy of Counters for reporting.
type Snapshot struct {
	TasksRun         int64
	RowsProcessed    int64
	BytesShuffled    int64
	BytesBroadcast   int64
	BytesSpilled     int64
	BytesUnspilled   int64
	Spills           int64
	Unspills         int64
	BytesRead        int64
	FLOPs            int64
	PeakStorageBytes int64
}

// Snapshot returns a consistent-enough copy for post-run reporting.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		TasksRun:         c.TasksRun.Load(),
		RowsProcessed:    c.RowsProcessed.Load(),
		BytesShuffled:    c.BytesShuffled.Load(),
		BytesBroadcast:   c.BytesBroadcast.Load(),
		BytesSpilled:     c.BytesSpilled.Load(),
		BytesUnspilled:   c.BytesUnspilled.Load(),
		Spills:           c.Spills.Load(),
		Unspills:         c.Unspills.Load(),
		BytesRead:        c.BytesRead.Load(),
		FLOPs:            c.FLOPs.Load(),
		PeakStorageBytes: c.PeakStorageBytes.Load(),
	}
}

// maxStore updates a max-tracking atomic.
func maxStore(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
