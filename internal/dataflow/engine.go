package dataflow

import (
	"context"
	"fmt"
	"os"
	"sync"

	"repro/internal/memory"
)

// Config describes the (simulated) cluster an Engine runs on: the worker
// count, per-worker core slots, the memory apportionment chosen by the Vista
// optimizer (or a baseline), and the PD system's memory-model kind.
type Config struct {
	// Nodes is the number of worker nodes.
	Nodes int
	// CoresPerNode is the degree of parallelism per worker (Table 1: cpu).
	CoresPerNode int
	// Kind selects Spark-like (spillable) or Ignite-like (memory-only)
	// storage behavior.
	Kind memory.SystemKind
	// Apportion is the per-worker memory apportionment.
	Apportion memory.Apportionment
	// DriverMemory bounds the driver's collect buffers (crash scenario 4).
	DriverMemory int64
	// SpillDir is where spill files go; empty means a fresh temp dir.
	SpillDir string
	// DefaultFormat is the persistence format for cached partitions
	// (Table 1(B): pers).
	DefaultFormat PersistFormat
}

// Engine is the dataflow runtime: a driver plus Nodes workers, each with its
// own memory pools, storage cache, and CoresPerNode execution slots.
type Engine struct {
	cfg      Config
	nodes    []*node
	driver   *memory.Pool
	counters Counters
	spillDir string
	ownDir   bool

	mu     sync.Mutex
	closed bool
	// runCtx is the run-scoped cancellation context (SetContext); nil means
	// never cancelled.
	runCtx context.Context
	// spillFiles tracks live spill files (guarded by mu) so Close can
	// remove any that error paths stranded — a run that dies mid-plan in a
	// caller-provided SpillDir must not leave orphan part-*.spill files.
	spillFiles map[string]struct{}
}

// node is one worker: its memory pools, partition cache, and core slots.
type node struct {
	id      int
	user    *memory.Pool
	core    *memory.Pool
	dl      *memory.Pool
	storage *storageCache
	slots   chan struct{}
}

// NewEngine validates cfg and builds the cluster.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("dataflow: need positive nodes (%d) and cores (%d)", cfg.Nodes, cfg.CoresPerNode)
	}
	if cfg.DriverMemory <= 0 {
		cfg.DriverMemory = memory.GB(4)
	}
	spillDir := cfg.SpillDir
	ownDir := false
	if spillDir == "" {
		d, err := os.MkdirTemp("", "vista-spill-*")
		if err != nil {
			return nil, fmt.Errorf("dataflow: spill dir: %w", err)
		}
		spillDir = d
		ownDir = true
	}
	e := &Engine{cfg: cfg, spillDir: spillDir, ownDir: ownDir, spillFiles: make(map[string]struct{})}
	e.driver = memory.NewPool(memory.User, memory.DriverOOM, cfg.DriverMemory)
	for i := 0; i < cfg.Nodes; i++ {
		n := &node{
			id:    i,
			user:  memory.NewPool(memory.User, memory.InsufficientUser, cfg.Apportion.User),
			core:  memory.NewPool(memory.Core, memory.LargePartition, cfg.Apportion.Core),
			dl:    memory.NewPool(memory.DLExecution, memory.DLBlowup, cfg.Apportion.DLExecution),
			slots: make(chan struct{}, cfg.CoresPerNode),
		}
		n.storage = newStorageCache(n, e, cfg.Apportion.Storage)
		for c := 0; c < cfg.CoresPerNode; c++ {
			n.slots <- struct{}{}
		}
		e.nodes = append(e.nodes, n)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetContext attaches a run-scoped cancellation context. Once ctx is
// cancelled every subsequent operation (and every operation in flight) fails
// fast with ctx's error: the scheduler stops dispatching, blocked slot
// acquires abort, and running tasks observe the cancellation through
// TaskContext.Done. Safe to call once, before the first operation.
func (e *Engine) SetContext(ctx context.Context) {
	e.mu.Lock()
	e.runCtx = ctx
	e.mu.Unlock()
}

// context returns the attached run context, or context.Background().
func (e *Engine) context() context.Context {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.runCtx == nil {
		return context.Background()
	}
	return e.runCtx
}

// Counters returns the engine's instrumentation counters.
func (e *Engine) Counters() *Counters { return &e.counters }

// DLPool returns worker nodeID's DL Execution Memory pool; the DL bridge
// (internal/dl) charges model replicas against it.
func (e *Engine) DLPool(nodeID int) *memory.Pool { return e.nodes[nodeID].dl }

// UserPool returns worker nodeID's User Memory pool.
func (e *Engine) UserPool(nodeID int) *memory.Pool { return e.nodes[nodeID].user }

// DriverPool returns the driver's memory pool.
func (e *Engine) DriverPool() *memory.Pool { return e.driver }

// StorageUsed returns the total bytes currently cached across all nodes.
func (e *Engine) StorageUsed() int64 {
	var total int64
	for _, n := range e.nodes {
		total += n.storage.pool.Used()
	}
	return total
}

// Close releases spill files and (if owned) the spill directory. Spill files
// still live at close time — tables leaked by error paths — are removed
// individually, so a shared SpillDir is left clean without touching files
// that belong to other engines.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	for path := range e.spillFiles {
		os.Remove(path)
	}
	e.spillFiles = nil
	if e.ownDir {
		return os.RemoveAll(e.spillDir)
	}
	return nil
}

// noteSpillLocked and noteUnspillLocked maintain the live spill-file set;
// callers hold e.mu.
func (e *Engine) noteSpillLocked(path string) {
	if e.spillFiles != nil && path != "" {
		e.spillFiles[path] = struct{}{}
	}
}

func (e *Engine) noteUnspillLocked(path string) {
	if e.spillFiles != nil {
		delete(e.spillFiles, path)
	}
}

// nodeFor maps a partition index to its owning worker.
func (e *Engine) nodeFor(partIndex int) *node {
	return e.nodes[partIndex%len(e.nodes)]
}

// TaskContext is handed to UDFs: it exposes the owning node's pools and the
// engine counters so user code (CNN inference, downstream training)
// participates in memory accounting and instrumentation.
type TaskContext struct {
	Engine *Engine
	NodeID int
	Part   int
	// done is closed when another task in the same operation fails or the
	// run-scoped context attached via Engine.SetContext is cancelled.
	done <-chan struct{}
}

// Done returns a channel closed when the operation this task belongs to has
// failed or the whole run has been cancelled (Engine.SetContext); long-running
// UDFs may watch it to abort cooperatively. Nil when the context was built
// outside runTasks (then it blocks forever, i.e. never cancelled).
func (tc *TaskContext) Done() <-chan struct{} { return tc.done }

// Cancelled reports whether the task's operation has already failed or been
// cancelled.
func (tc *TaskContext) Cancelled() bool {
	select {
	case <-tc.done:
		return true
	default:
		return false
	}
}

// AllocUser charges n bytes of User Memory for the task's duration; the
// caller must FreeUser. Failures surface crash scenario 2.
func (tc *TaskContext) AllocUser(n int64, detail string) error {
	return tc.Engine.nodes[tc.NodeID].user.Alloc(n, detail)
}

// FreeUser releases a prior AllocUser charge.
func (tc *TaskContext) FreeUser(n int64) { tc.Engine.nodes[tc.NodeID].user.Free(n) }

// AddFLOPs records floating-point work done by the UDF.
func (tc *TaskContext) AddFLOPs(n int64) { tc.Engine.counters.FLOPs.Add(n) }

// runTasks executes fn once per task, scheduling task i on node i%Nodes and
// bounding concurrency by each node's core slots. The first error cancels
// remaining tasks: undispatched tasks are abandoned — the scheduler checks
// for failure *before* blocking on a slot and aborts a blocked acquire, so a
// long straggler can never delay cancellation — and already-started tasks
// finish (they may watch TaskContext.Done to abort cooperatively). A
// run-scoped context attached via SetContext cancels the same way: its error
// becomes the operation's error and TaskContext.Done closes.
func (e *Engine) runTasks(tasks int, fn func(tc *TaskContext) error) error {
	if tasks == 0 {
		return nil
	}
	ctx := e.context()
	if err := ctx.Err(); err != nil {
		return err
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     = make(chan struct{})
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			close(done)
		}
		mu.Unlock()
	}
	// Propagate run-level cancellation into this operation's done channel, so
	// one mechanism covers both "a sibling task failed" and "the whole run
	// was cancelled". The watcher exits with the operation.
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-done:
			case <-stop:
			}
		}()
	}
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
schedule:
	for i := 0; i < tasks; i++ {
		if cancelled() {
			break
		}
		n := e.nodeFor(i)
		select {
		case <-n.slots: // acquire a core slot before spawning
		case <-done: // a task failed while every slot was busy
			break schedule
		}
		if cancelled() {
			n.slots <- struct{}{}
			break
		}
		wg.Add(1)
		go func(taskIdx int, n *node) {
			defer wg.Done()
			defer func() { n.slots <- struct{}{} }()
			e.counters.TasksRun.Add(1)
			tc := &TaskContext{Engine: e, NodeID: n.id, Part: taskIdx, done: done}
			if err := fn(tc); err != nil {
				fail(err)
			}
		}(i, n)
	}
	wg.Wait()
	return firstErr
}
