package dataflow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestSetContextPreCancelled verifies that an already-cancelled run context
// fails every operation up front, before any task is dispatched.
func TestSetContextPreCancelled(t *testing.T) {
	e := newTestEngine(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)

	if _, err := e.CreateTable("t", makeRows(16, 4), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("CreateTable after cancel = %v, want context.Canceled", err)
	}
	if got := e.Counters().TasksRun.Load(); got != 0 {
		t.Errorf("cancelled engine ran %d tasks, want 0", got)
	}
}

// TestSetContextCancelMidOperation cancels the run context while UDF tasks
// are blocked: the operation must return the context's error, every running
// task must observe TaskContext.Done, and dropping the inputs must drain the
// pools to zero.
func TestSetContextCancelMidOperation(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tbl, err := e.CreateTable("t", makeRows(16, 4), 4)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)

	var sawDone atomic.Int64
	started := make(chan struct{}, 16)
	// Cancel once at least one task is provably inside the UDF.
	go func() {
		<-started
		cancel()
	}()
	out, err := e.MapPartitions("blocked", tbl, func(tc *TaskContext, rows []Row) ([]Row, error) {
		started <- struct{}{}
		select {
		case <-tc.Done():
			sawDone.Add(1)
			return nil, context.Canceled
		case <-time.After(30 * time.Second):
			return rows, nil // deadlocked test fallback, never reached
		}
	})
	if out != nil {
		out.Drop()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MapPartitions = %v, want context.Canceled", err)
	}
	if sawDone.Load() == 0 {
		t.Error("no task observed TaskContext.Done after run cancellation")
	}

	tbl.Drop()
	for i, n := range e.nodes {
		if used := n.storage.pool.Used(); used != 0 {
			t.Errorf("node %d storage pool holds %d bytes after cancel+drop", i, used)
		}
		if used := n.user.Used(); used != 0 {
			t.Errorf("node %d user pool holds %d bytes after cancel+drop", i, used)
		}
	}

	// The engine stays cancelled: later operations fail fast too.
	if _, err := e.CreateTable("t2", makeRows(4, 2), 2); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel CreateTable = %v, want context.Canceled", err)
	}
}

// TestSetContextDeadline verifies deadline expiry surfaces as
// context.DeadlineExceeded.
func TestSetContextDeadline(t *testing.T) {
	e := newTestEngine(t, testConfig())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	e.SetContext(ctx)
	<-ctx.Done()
	if _, err := e.CreateTable("t", makeRows(4, 2), 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CreateTable after deadline = %v, want context.DeadlineExceeded", err)
	}
}
