package dataflow

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memory"
)

// brokenSpillDir returns a path that exists but is not a directory, so every
// spill write fails with ENOTDIR — a disk-failure injection that works even
// when tests run as root (permission bits would not).
func brokenSpillDir(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEvictSpillFailureFreesCharge is the regression test for the
// Storage-pool leak: when eviction's spill write fails, the partition leaves
// the cache, so its charge must leave the pool with it. Pre-fix, the charge
// leaked (evict returned 0 bytes released), which both failed this
// CreateTable with a spurious StorageExhausted and left the pool non-zero
// after all tables were dropped.
func TestEvictSpillFailureFreesCharge(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = memory.MB(0.5)
	cfg.SpillDir = brokenSpillDir(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Far more rows than 0.5 MB of Storage holds: caching forces evictions,
	// and every eviction's spill fails.
	tb, err := e.CreateTable("big", makeRows(5000, 100), 8)
	if err != nil {
		t.Fatalf("CreateTable with failing spills crashed: %v (leaked charges "+
			"starve the pool)", err)
	}
	if e.Counters().Spills.Load() != 0 {
		t.Error("failed spills were counted as spills")
	}
	if used := e.StorageUsed(); used <= 0 {
		t.Fatalf("expected live cached bytes, got %d", used)
	}
	tb.Drop()
	if used := e.StorageUsed(); used != 0 {
		t.Fatalf("storage pool leaks %d bytes after dropping every table", used)
	}
}

// TestUnspillChargeFailureKeepsAccountingExact is the regression test for the
// touch/unspill leak: unspill materializes rows before the pool charge, and a
// failed charge must not leave those rows resident, unaccounted, and outside
// the LRU index. The fix re-spills the partition (or discards it when the
// disk is also failing).
func TestUnspillChargeFailureKeepsAccountingExact(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = 4 << 10 // 4 KB: far below the partition's rows
	e := newTestEngine(t, cfg)
	sc := e.nodes[0].storage

	p := newPartition(0, makeRows(200, 100))
	if _, err := p.spill(e.spillDir); err != nil {
		t.Fatal(err)
	}

	_, err := sc.touch(p)
	if err == nil {
		t.Fatal("touch succeeded with a 4 KB storage pool")
	}
	if _, ok := memory.IsOOM(err); !ok {
		t.Fatalf("touch error = %v, want an OOM", err)
	}
	if !p.Spilled() {
		t.Error("charge-failed partition left resident in memory (untracked by the memory model)")
	}
	if got := p.MemBytes(); got != 0 {
		t.Errorf("charge-failed partition carries %d mem bytes", got)
	}
	if used := sc.pool.Used(); used != 0 {
		t.Errorf("storage pool reports %d bytes with nothing cached", used)
	}
	if _, ok := sc.index[p.id]; ok {
		t.Error("charge-failed partition present in the LRU index")
	}

	// The partition must still be readable: the re-spill preserved its rows.
	rows, err := p.Rows()
	if err != nil {
		t.Fatalf("re-spilled partition unreadable: %v", err)
	}
	if len(rows) != 200 {
		t.Fatalf("re-spilled partition has %d rows, want 200", len(rows))
	}
}

// TestUnspillChargeFailureWithBrokenDiskDiscards covers the double-failure
// path: the pool refuses the charge and the re-spill write also fails. The
// partition must be discarded — zero charge, zero resident bytes — rather
// than linger unaccounted.
func TestUnspillChargeFailureWithBrokenDiskDiscards(t *testing.T) {
	goodDir := t.TempDir()
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = 4 << 10
	cfg.SpillDir = brokenSpillDir(t)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sc := e.nodes[0].storage

	// Spill to a working directory first; the engine's own spill dir (used
	// by the recovery re-spill) is the broken one.
	p := newPartition(0, makeRows(200, 100))
	if _, err := p.spill(goodDir); err != nil {
		t.Fatal(err)
	}

	if _, err := sc.touch(p); err == nil {
		t.Fatal("touch succeeded with a 4 KB storage pool")
	}
	if got := p.MemBytes(); got != 0 {
		t.Errorf("discarded partition carries %d mem bytes", got)
	}
	if used := sc.pool.Used(); used != 0 {
		t.Errorf("storage pool reports %d bytes with nothing cached", used)
	}
}

// TestRunTasksFailureCancelsBlockedAcquire is the regression test for the
// scheduler's cancellation latency: once a task fails, the dispatch loop must
// stop even while blocked waiting for a slot held by a straggler. The
// straggler here only finishes when it observes cancellation via
// TaskContext.Done, so the pre-fix scheduler (bare slot receive, error check
// only after acquire, no Done signal) deadlocks this exact scenario.
func TestRunTasksFailureCancelsBlockedAcquire(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 2
	cfg.CoresPerNode = 1
	e := newTestEngine(t, cfg)

	boom := errors.New("boom")
	var ran2 atomic.Bool
	errc := make(chan error, 1)
	go func() {
		errc <- e.runTasks(3, func(tc *TaskContext) error {
			switch tc.Part {
			case 0: // node 0: holds the only slot task 2 needs
				<-tc.Done()
				return nil
			case 1: // node 1: the fast failure
				return boom
			default: // node 0 again: must never be dispatched
				ran2.Store(true)
				return nil
			}
		})
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, boom) {
			t.Fatalf("runTasks error = %v, want boom", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runTasks blocked on a straggler's slot after a task failed")
	}
	if ran2.Load() {
		t.Error("task scheduled after the operation failed")
	}
	if got := e.Counters().TasksRun.Load(); got != 2 {
		t.Errorf("TasksRun = %d, want 2", got)
	}
}

// TestTaskContextCancelledDefault: a context outside any failure reports not
// cancelled, and UDFs see a non-cancelled context on healthy runs.
func TestTaskContextCancelledDefault(t *testing.T) {
	e := newTestEngine(t, testConfig())
	err := e.runTasks(4, func(tc *TaskContext) error {
		if tc.Cancelled() {
			t.Error("healthy task reports cancelled")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &TaskContext{}
	if tc.Cancelled() {
		t.Error("zero-value TaskContext reports cancelled")
	}
}
