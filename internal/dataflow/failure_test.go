package dataflow

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

// TestSpillFileLossSurfacesError injects a disk failure: spill files are
// deleted behind the engine's back, and reading the table must return an
// error — never a panic or silent data loss.
func TestSpillFileLossSurfacesError(t *testing.T) {
	spillDir := t.TempDir()
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = memory.MB(0.5)
	cfg.SpillDir = spillDir
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tb, err := e.CreateTable("big", makeRows(5000, 100), 8)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("expected spill files on disk")
	}
	for _, entry := range entries {
		if err := os.Remove(filepath.Join(spillDir, entry.Name())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Collect(tb); err == nil {
		t.Fatal("collect over lost spill files succeeded")
	}
}

// TestConcurrentTableOperations exercises parallel map/aggregate on shared
// tables for race-freedom (run with -race in CI).
func TestConcurrentTableOperations(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(400, 10), 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			out, err := e.MapPartitions("m", tb, func(_ *TaskContext, in []Row) ([]Row, error) {
				return in, nil
			})
			if err != nil {
				errs <- err
				return
			}
			out.Drop()
		}()
		go func() {
			defer wg.Done()
			if err := e.ForEachPartition(tb, func(_ *TaskContext, rows []Row) error {
				return nil
			}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent op failed: %v", err)
	}
	n, err := tb.NumRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Errorf("table corrupted: %d rows", n)
	}
}

// Property: for random key sets, shuffle and broadcast joins agree exactly
// with a reference nested-loop join on the matched ID set.
func TestJoinEquivalenceProperty(t *testing.T) {
	e := newTestEngine(t, testConfig())
	f := func(leftSeed, rightSeed uint8) bool {
		nl := int(leftSeed%20) + 1
		nr := int(rightSeed%20) + 1
		leftRows := make([]Row, nl)
		for i := range leftRows {
			leftRows[i] = Row{ID: int64(i * int(leftSeed%3+1)), Structured: []float32{1}}
		}
		rightRows := make([]Row, nr)
		for i := range rightRows {
			rightRows[i] = Row{ID: int64(i * int(rightSeed%4+1)), Image: []byte{1}}
		}
		want := map[int64]bool{}
		seenL := map[int64]bool{}
		for _, l := range leftRows {
			seenL[l.ID] = true
		}
		seenR := map[int64]bool{}
		for _, r := range rightRows {
			if seenR[r.ID] {
				continue
			}
			seenR[r.ID] = true
			if seenL[r.ID] {
				want[r.ID] = true
			}
		}
		lt, err := e.CreateTable("l", dedupeByID(leftRows), 3)
		if err != nil {
			return false
		}
		rt, err := e.CreateTable("r", dedupeByID(rightRows), 5)
		if err != nil {
			return false
		}
		defer lt.Drop()
		defer rt.Drop()
		for _, kind := range []JoinKind{ShuffleJoin, BroadcastJoin} {
			out, err := e.Join("j", lt, rt, kind)
			if err != nil {
				return false
			}
			rows, err := e.Collect(out)
			out.Drop()
			if err != nil {
				return false
			}
			if len(rows) != len(want) {
				return false
			}
			for _, r := range rows {
				if !want[r.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func dedupeByID(rows []Row) []Row {
	seen := map[int64]bool{}
	out := rows[:0:0]
	for _, r := range rows {
		if !seen[r.ID] {
			seen[r.ID] = true
			out = append(out, r)
		}
	}
	return out
}
