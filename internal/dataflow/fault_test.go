package dataflow

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/memory"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if sites := faultinject.ArmedSites(); len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "failpoint sites left armed at exit: %v\n", sites)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// spilledEngine builds a 1-node engine whose storage budget is too small for
// the table, guaranteeing spilled partitions to exercise the unspill paths.
func spilledEngine(t *testing.T) (*Engine, *Table, string) {
	t.Helper()
	spillDir := t.TempDir()
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = memory.MB(0.5)
	cfg.SpillDir = spillDir
	e := newTestEngine(t, cfg)
	tb, err := e.CreateTable("big", makeRows(5000, 100), 8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Counters().Spills.Load() == 0 {
		t.Fatal("table too small: nothing spilled")
	}
	return e, tb, spillDir
}

func spilledPartition(t *testing.T, tb *Table) *Partition {
	t.Helper()
	for _, p := range tb.partitions {
		if p.Spilled() {
			return p
		}
	}
	t.Fatal("no spilled partition found")
	return nil
}

// Regression: when touch unspills a partition but the pool refuses the
// re-admission charge, the recovery re-spill used to write the file directly
// — a real disk write invisible to Spills/BytesSpilled, so instrumentation
// (and the simulator's spill-volume comparison) drifted from reality.
func TestTouchRespillCountsSpill(t *testing.T) {
	defer faultinject.DisarmAll()
	e, tb, _ := spilledEngine(t)
	p := spilledPartition(t, tb)

	spillsBefore := e.Counters().Spills.Load()
	bytesBefore := e.Counters().BytesSpilled.Load()

	faultinject.Arm(FaultUnspillAdmit, faultinject.FailNth(1))
	_, err := e.nodeFor(p.index).storage.touch(p)
	faultinject.DisarmAll()
	if err == nil {
		t.Fatal("touch with injected admission failure succeeded")
	}
	if _, ok := faultinject.AsFault(err); !ok {
		t.Fatalf("error lost the typed fault: %v", err)
	}
	if !p.Spilled() {
		t.Fatal("partition not re-spilled after refused admission")
	}
	if got := e.Counters().Spills.Load(); got != spillsBefore+1 {
		t.Fatalf("recovery re-spill not counted: Spills %d -> %d", spillsBefore, got)
	}
	if got := e.Counters().BytesSpilled.Load(); got <= bytesBefore {
		t.Fatalf("recovery re-spill bytes not counted: BytesSpilled %d -> %d", bytesBefore, got)
	}
	// The re-spilled partition must still be readable.
	if _, err := e.nodeFor(p.index).storage.touch(p); err != nil {
		t.Fatalf("partition unreadable after recovery re-spill: %v", err)
	}
}

// A torn spill write (disk filling up mid-eviction) must not leave a partial
// spill file behind, and the rows must stay readable from memory.
func TestTornSpillWriteLeavesNoOrphan(t *testing.T) {
	defer faultinject.DisarmAll()
	spillDir := t.TempDir()
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = memory.MB(0.5)
	cfg.SpillDir = spillDir
	e := newTestEngine(t, cfg)

	faultinject.Arm(FaultSpillWrite, faultinject.FailAfterBytes(64))
	tb, err := e.CreateTable("big", makeRows(5000, 100), 8)
	faultinject.DisarmAll()
	if err != nil {
		t.Fatalf("CreateTable: %v", err) // eviction tolerates disk trouble
	}
	// The torn write's path must have been cleaned up: every file in the
	// spill dir must decode (belong to a successfully spilled partition).
	for _, p := range tb.partitions {
		if _, err := p.Rows(); err != nil {
			t.Fatalf("partition %d unreadable after torn spill: %v", p.index, err)
		}
	}
	if _, err := e.Collect(tb); err != nil {
		t.Fatalf("Collect after torn spill: %v", err)
	}
}

// A silently torn spill file (no write error, short payload — a no-fsync
// kill) must surface at unspill as the typed corruption error, never as a
// panic or silent row loss.
func TestSilentlyTornSpillSurfacesCorruptRow(t *testing.T) {
	defer faultinject.DisarmAll()
	spillDir := t.TempDir()
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = memory.MB(0.5)
	cfg.SpillDir = spillDir
	e := newTestEngine(t, cfg)

	faultinject.Arm(FaultSpillWrite, faultinject.SilentTruncate(10))
	tb, err := e.CreateTable("big", makeRows(5000, 100), 8)
	faultinject.DisarmAll()
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	found := false
	for _, p := range tb.partitions {
		if !p.Spilled() {
			continue
		}
		if _, err := e.nodeFor(p.index).storage.touch(p); err != nil {
			if !errors.Is(err, ErrCorruptRow) {
				t.Fatalf("torn spill surfaced untyped error: %v", err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("silently torn spill file never surfaced ErrCorruptRow")
	}
}

// An injected read failure during unspill must surface as a typed fault.
func TestUnspillReadFaultSurfaces(t *testing.T) {
	defer faultinject.DisarmAll()
	e, tb, _ := spilledEngine(t)
	p := spilledPartition(t, tb)
	faultinject.Arm(FaultUnspillRead, faultinject.FailNth(1))
	_, err := e.nodeFor(p.index).storage.touch(p)
	faultinject.DisarmAll()
	if err == nil {
		t.Fatal("touch with injected read failure succeeded")
	}
	if _, ok := faultinject.AsFault(err); !ok {
		t.Fatalf("error lost the typed fault: %v", err)
	}
	// The fault is transient: the spill file is intact, so a retry succeeds.
	if _, err := e.nodeFor(p.index).storage.touch(p); err != nil {
		t.Fatalf("retry after transient read fault failed: %v", err)
	}
}

// Close must remove spill files the engine wrote into a caller-provided
// SpillDir — including files stranded by error paths — without deleting the
// directory itself.
func TestCloseRemovesSpillFilesFromSharedDir(t *testing.T) {
	e, _, spillDir := spilledEngine(t)
	des, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) == 0 {
		t.Fatal("expected spill files before Close")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	des, err = os.ReadDir(spillDir)
	if err != nil {
		t.Fatalf("caller-provided spill dir deleted by Close: %v", err)
	}
	if len(des) != 0 {
		t.Fatalf("Close left %d spill files in shared dir", len(des))
	}
}
