// Package dataflow implements the parallel-dataflow (PD) substrate of the
// Vista reproduction: partitioned in-memory tables with a driver/executor
// execution model, shuffle-hash and broadcast key-key joins, serialized and
// deserialized persistence formats with disk spill, and memory accounting
// against the abstract memory model of internal/memory. It plays the role
// Spark and Ignite play in the paper (Section 2) — scaled to a single
// process, with nodes and core slots modeled by goroutine scheduling.
package dataflow

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/faultinject"
	"repro/internal/tensor"
)

// Failpoint sites (see internal/faultinject) on the row codec, the choke
// point every spill, shuffle blob, and feature-store entry passes through.
const (
	// FaultRowEncode guards EncodeRows.
	FaultRowEncode = "dataflow/rowcodec.encode"
	// FaultRowDecode guards DecodeRows.
	FaultRowDecode = "dataflow/rowcodec.decode"
)

// Row is one record of a Vista table: the primary key, the downstream label,
// the structured feature vector X, the raw (compressed) image payload I, and
// any materialized feature layers carried as a TensorList (Section 3.3:
// "Image and feature tensors are stored with our custom TensorList
// datatype").
type Row struct {
	ID         int64
	Label      float32
	Structured []float32
	Image      []byte
	Features   *tensor.TensorList
}

// jvmObjectOverhead approximates the per-row constant overhead of holding a
// deserialized record in memory (headers, offsets, pointers) — Figure 14's
// fixed fields plus object headers.
const jvmObjectOverhead = 48

// MemBytes estimates the row's deserialized in-memory footprint.
func (r *Row) MemBytes() int64 {
	n := int64(jvmObjectOverhead)
	n += int64(len(r.Structured)) * 4
	n += int64(len(r.Image))
	if r.Features != nil {
		n += r.Features.SizeBytes() + int64(r.Features.Len())*24
	}
	return n
}

// Clone deep-copies the row.
func (r *Row) Clone() Row {
	c := Row{ID: r.ID, Label: r.Label}
	if r.Structured != nil {
		c.Structured = append([]float32(nil), r.Structured...)
	}
	if r.Image != nil {
		c.Image = append([]byte(nil), r.Image...)
	}
	if r.Features != nil {
		c.Features = r.Features.Clone()
	}
	return c
}

// The binary row codec follows the paper's description of Spark's "Tungsten
// record format" (Appendix A, Figure 14): a fixed-length header (key, label,
// null-tracking bitmap) followed by variable-length payloads with
// offset/length words. Feature tensors are encoded as shape-prefixed float32
// runs.

// null-bitmap bits for the row's variable-length fields.
const (
	nullStructured = 1 << iota
	nullImage
	nullFeatures
)

var (
	// ErrCorruptRow indicates a malformed encoded row.
	ErrCorruptRow = errors.New("dataflow: corrupt row encoding")
	byteOrder     = binary.LittleEndian
)

// EncodeRow appends the binary encoding of r to dst and returns the extended
// slice.
func EncodeRow(dst []byte, r *Row) []byte {
	var scratch [8]byte
	put64 := func(v uint64) {
		byteOrder.PutUint64(scratch[:], v)
		dst = append(dst, scratch[:8]...)
	}
	put32 := func(v uint32) {
		byteOrder.PutUint32(scratch[:4], v)
		dst = append(dst, scratch[:4]...)
	}

	put64(uint64(r.ID))
	put32(math.Float32bits(r.Label))
	var nulls uint32
	if r.Structured == nil {
		nulls |= nullStructured
	}
	if r.Image == nil {
		nulls |= nullImage
	}
	if r.Features == nil {
		nulls |= nullFeatures
	}
	put32(nulls)

	put32(uint32(len(r.Structured)))
	for _, v := range r.Structured {
		put32(math.Float32bits(v))
	}
	put32(uint32(len(r.Image)))
	dst = append(dst, r.Image...)

	var nTensors uint32
	if r.Features != nil {
		nTensors = uint32(r.Features.Len())
	}
	put32(nTensors)
	for i := 0; i < int(nTensors); i++ {
		t := r.Features.Get(i)
		s := t.Shape()
		put32(uint32(len(s)))
		for _, d := range s {
			put32(uint32(d))
		}
		for _, v := range t.Data() {
			put32(math.Float32bits(v))
		}
	}
	return dst
}

// rowReader decodes rows from a byte stream.
type rowReader struct {
	buf []byte
	off int
}

func (rr *rowReader) remaining() int { return len(rr.buf) - rr.off }

func (rr *rowReader) u32() (uint32, error) {
	if rr.remaining() < 4 {
		return 0, ErrCorruptRow
	}
	v := byteOrder.Uint32(rr.buf[rr.off:])
	rr.off += 4
	return v, nil
}

func (rr *rowReader) u64() (uint64, error) {
	if rr.remaining() < 8 {
		return 0, ErrCorruptRow
	}
	v := byteOrder.Uint64(rr.buf[rr.off:])
	rr.off += 8
	return v, nil
}

func (rr *rowReader) decodeRow() (Row, error) {
	var r Row
	id, err := rr.u64()
	if err != nil {
		return r, err
	}
	r.ID = int64(id)
	lb, err := rr.u32()
	if err != nil {
		return r, err
	}
	r.Label = math.Float32frombits(lb)
	nulls, err := rr.u32()
	if err != nil {
		return r, err
	}

	nStr, err := rr.u32()
	if err != nil {
		return r, err
	}
	if nStr > 0 || nulls&nullStructured == 0 {
		if rr.remaining() < int(nStr)*4 {
			return r, ErrCorruptRow
		}
		r.Structured = make([]float32, nStr)
		for i := range r.Structured {
			r.Structured[i] = math.Float32frombits(byteOrder.Uint32(rr.buf[rr.off:]))
			rr.off += 4
		}
	}

	nImg, err := rr.u32()
	if err != nil {
		return r, err
	}
	if nImg > 0 || nulls&nullImage == 0 {
		if rr.remaining() < int(nImg) {
			return r, ErrCorruptRow
		}
		r.Image = make([]byte, nImg)
		copy(r.Image, rr.buf[rr.off:rr.off+int(nImg)])
		rr.off += int(nImg)
	}

	nTensors, err := rr.u32()
	if err != nil {
		return r, err
	}
	if nulls&nullFeatures == 0 {
		r.Features = tensor.NewTensorList()
	}
	for i := 0; i < int(nTensors); i++ {
		rank, err := rr.u32()
		if err != nil {
			return r, err
		}
		if rank > 8 {
			return r, ErrCorruptRow
		}
		shape := make([]int, rank)
		elems := 1
		for d := range shape {
			dim, err := rr.u32()
			if err != nil {
				return r, err
			}
			shape[d] = int(dim)
			elems *= int(dim)
		}
		if rr.remaining() < elems*4 {
			return r, ErrCorruptRow
		}
		data := make([]float32, elems)
		for j := range data {
			data[j] = math.Float32frombits(byteOrder.Uint32(rr.buf[rr.off:]))
			rr.off += 4
		}
		t, err := tensor.FromSlice(data, shape...)
		if err != nil {
			return r, ErrCorruptRow
		}
		if r.Features == nil {
			r.Features = tensor.NewTensorList()
		}
		r.Features.Append(t)
	}
	return r, nil
}

// EncodeRows encodes a row slice into a single compressed blob — the
// "compressed serialized" persistence format of Section 4.2.3.
func EncodeRows(rows []Row) ([]byte, error) {
	if err := faultinject.Hit(FaultRowEncode); err != nil {
		return nil, fmt.Errorf("dataflow: encode rows: %w", err)
	}
	var raw []byte
	var scratch [4]byte
	byteOrder.PutUint32(scratch[:], uint32(len(rows)))
	raw = append(raw, scratch[:]...)
	for i := range rows {
		raw = EncodeRow(raw, &rows[i])
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("dataflow: %w", err)
	}
	if _, err := w.Write(raw); err != nil {
		return nil, fmt.Errorf("dataflow: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("dataflow: %w", err)
	}
	return out.Bytes(), nil
}

// DecodeRows decodes a blob produced by EncodeRows.
func DecodeRows(blob []byte) ([]Row, error) {
	if err := faultinject.Hit(FaultRowDecode); err != nil {
		return nil, fmt.Errorf("dataflow: decode rows: %w", err)
	}
	r := flate.NewReader(bytes.NewReader(blob))
	raw, err := io.ReadAll(r)
	if err != nil {
		// A blob that will not decompress is a corrupt encoding (e.g. a
		// torn spill file); surface the typed sentinel, not a bare flate
		// error, so callers can classify the failure.
		return nil, fmt.Errorf("%w: decompress: %v", ErrCorruptRow, err)
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("%w: decompress: %v", ErrCorruptRow, err)
	}
	rr := &rowReader{buf: raw}
	n, err := rr.u32()
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, n)
	for i := 0; i < int(n); i++ {
		row, err := rr.decodeRow()
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		rows = append(rows, row)
	}
	if rr.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRow, rr.remaining())
	}
	return rows, nil
}
