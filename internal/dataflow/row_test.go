package dataflow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func sampleRow(id int64) Row {
	return Row{
		ID:         id,
		Label:      1,
		Structured: []float32{1.5, -2.25, 3},
		Image:      []byte{9, 8, 7, 6},
		Features: tensor.NewTensorList(
			tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2),
			tensor.MustFromSlice([]float32{5, 6}, 2),
		),
	}
}

func rowsEqual(a, b *Row) bool {
	if a.ID != b.ID || a.Label != b.Label {
		return false
	}
	if !reflect.DeepEqual(a.Structured, b.Structured) {
		return false
	}
	if !reflect.DeepEqual(a.Image, b.Image) {
		return false
	}
	an, bn := 0, 0
	if a.Features != nil {
		an = a.Features.Len()
	}
	if b.Features != nil {
		bn = b.Features.Len()
	}
	if an != bn {
		return false
	}
	for i := 0; i < an; i++ {
		ta, tb := a.Features.Get(i), b.Features.Get(i)
		if !ta.Shape().Equal(tb.Shape()) || !reflect.DeepEqual(ta.Data(), tb.Data()) {
			return false
		}
	}
	return true
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		sampleRow(1),
		{ID: 2},                          // all-nil payloads
		{ID: 3, Structured: []float32{}}, // empty but non-nil
		{ID: 4, Image: []byte{}},         // empty image
		{ID: 5, Features: tensor.NewTensorList()}, // empty list
		{ID: -6, Label: -0.5, Structured: []float32{7}},
	}
	blob, err := EncodeRows(rows)
	if err != nil {
		t.Fatalf("EncodeRows: %v", err)
	}
	got, err := DecodeRows(blob)
	if err != nil {
		t.Fatalf("DecodeRows: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if !rowsEqual(&rows[i], &got[i]) {
			t.Errorf("row %d mismatch:\n in: %+v\nout: %+v", i, rows[i], got[i])
		}
	}
}

func TestRowCodecNilVsEmptyPreserved(t *testing.T) {
	rows := []Row{{ID: 1}, {ID: 2, Structured: []float32{}, Image: []byte{}, Features: tensor.NewTensorList()}}
	blob, err := EncodeRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRows(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Structured != nil || got[0].Image != nil || got[0].Features != nil {
		t.Error("nil payloads not preserved")
	}
	if got[1].Structured == nil || got[1].Image == nil || got[1].Features == nil {
		t.Error("empty payloads decoded as nil")
	}
}

func TestDecodeRowsCorruption(t *testing.T) {
	blob, err := EncodeRows([]Row{sampleRow(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRows(blob[:len(blob)/2]); err == nil {
		t.Error("expected error decoding truncated blob")
	}
	if _, err := DecodeRows([]byte{0x00, 0x01, 0x02}); err == nil {
		t.Error("expected error decoding garbage")
	}
}

func TestRowMemBytes(t *testing.T) {
	r := Row{ID: 1}
	base := r.MemBytes()
	if base <= 0 {
		t.Fatal("empty row has non-positive footprint")
	}
	r.Structured = make([]float32, 100)
	if got := r.MemBytes(); got != base+400 {
		t.Errorf("structured delta = %d, want 400", got-base)
	}
	r.Features = tensor.NewTensorList(tensor.New(10))
	if r.MemBytes() <= base+400 {
		t.Error("features did not increase footprint")
	}
}

func TestRowClone(t *testing.T) {
	r := sampleRow(9)
	c := r.Clone()
	c.Structured[0] = 99
	c.Image[0] = 99
	c.Features.Get(0).Set(99, 0, 0)
	if r.Structured[0] == 99 || r.Image[0] == 99 || r.Features.Get(0).At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

// Property: the codec round-trips arbitrary structured payloads exactly.
func TestRowCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(id int64, label float32, n uint8) bool {
		r := Row{ID: id, Label: label, Structured: make([]float32, int(n%64))}
		for i := range r.Structured {
			r.Structured[i] = rng.Float32()*200 - 100
		}
		if n%3 == 0 {
			r.Image = make([]byte, int(n))
			rng.Read(r.Image)
		}
		if n%4 == 0 {
			r.Features = tensor.NewTensorList(tensor.New(int(n%7) + 1))
		}
		blob, err := EncodeRows([]Row{r})
		if err != nil {
			return false
		}
		got, err := DecodeRows(blob)
		if err != nil || len(got) != 1 {
			return false
		}
		return rowsEqual(&r, &got[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRowsCompresses(t *testing.T) {
	// Highly redundant rows must compress well below their raw payload —
	// the premise of the serialized persistence format (Section 4.2.3 and
	// Appendix A's compressibility observation).
	rows := make([]Row, 50)
	for i := range rows {
		rows[i] = Row{ID: int64(i), Structured: make([]float32, 1000)} // zeros
	}
	blob, err := EncodeRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	raw := int64(50 * 1000 * 4)
	if int64(len(blob)) > raw/5 {
		t.Errorf("compressed %d bytes for %d raw; expected at least 5x compression of zeros", len(blob), raw)
	}
}
