package dataflow

import (
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/tensor"
)

// testConfig returns a roomy 2-node Spark-like config for functional tests.
func testConfig() Config {
	return Config{
		Nodes:        2,
		CoresPerNode: 2,
		Kind:         memory.SparkLike,
		Apportion: memory.Apportionment{
			OSReserved:  memory.MB(64),
			DLExecution: memory.MB(256),
			User:        memory.MB(256),
			Core:        memory.MB(256),
			Storage:     memory.MB(256),
		},
		DriverMemory: memory.MB(256),
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.SpillDir == "" {
		cfg.SpillDir = t.TempDir()
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func makeRows(n, structDim int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		s := make([]float32, structDim)
		for j := range s {
			s[j] = float32(i*structDim + j)
		}
		rows[i] = Row{ID: int64(i), Label: float32(i % 2), Structured: s}
	}
	return rows
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Nodes: 0, CoresPerNode: 1}); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := NewEngine(Config{Nodes: 1, CoresPerNode: 0}); err == nil {
		t.Error("accepted zero cores")
	}
}

func TestCreateTableAndCollect(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(100, 4), 8)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if tb.NumPartitions() != 8 {
		t.Errorf("np = %d, want 8", tb.NumPartitions())
	}
	n, err := tb.NumRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("rows = %d, want 100", n)
	}
	got, err := e.Collect(tb)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("collected %d rows", len(got))
	}
	for i := range got {
		if got[i].ID != int64(i) {
			t.Fatalf("collect not sorted: got[%d].ID = %d", i, got[i].ID)
		}
	}
	if e.Counters().Snapshot().BytesRead <= 0 {
		t.Error("BytesRead not counted")
	}
}

func TestCreateTableInvalidNP(t *testing.T) {
	e := newTestEngine(t, testConfig())
	if _, err := e.CreateTable("t", makeRows(10, 1), 0); err == nil {
		t.Error("accepted np = 0")
	}
}

func TestMapPartitionsTransforms(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(50, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.MapPartitions("t2", tb, func(_ *TaskContext, in []Row) ([]Row, error) {
		res := make([]Row, len(in))
		for i, r := range in {
			c := r.Clone()
			c.Label = 7
			res[i] = c
		}
		return res, nil
	})
	if err != nil {
		t.Fatalf("MapPartitions: %v", err)
	}
	rows, err := e.Collect(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Label != 7 {
			t.Fatalf("row %d label = %v, want 7", r.ID, r.Label)
		}
	}
	if e.Counters().Snapshot().TasksRun < 4 {
		t.Error("expected at least 4 tasks")
	}
}

func TestMapAndFilter(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(40, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := e.Map("d", tb, func(_ *TaskContext, r Row) (Row, error) {
		c := r.Clone()
		c.Structured[0] *= 2
		return c, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	even, err := e.Filter("e", doubled, func(r *Row) bool { return r.ID%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.Collect(even)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("filtered to %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		if r.Structured[0] != float32(r.ID*2) {
			t.Fatalf("row %d structured = %v", r.ID, r.Structured[0])
		}
	}
}

func TestMapPartitionsErrorPropagates(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(10, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.MapPartitions("bad", tb, func(_ *TaskContext, in []Row) ([]Row, error) {
		return nil, ErrCorruptRow
	})
	if err == nil {
		t.Fatal("UDF error swallowed")
	}
}

func TestRepartitionShuffles(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(60, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Repartition("t16", tb, 16)
	if err != nil {
		t.Fatalf("Repartition: %v", err)
	}
	if out.NumPartitions() != 16 {
		t.Errorf("np = %d, want 16", out.NumPartitions())
	}
	n, err := out.NumRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Errorf("rows = %d, want 60", n)
	}
	if e.Counters().Snapshot().BytesShuffled <= 0 {
		t.Error("shuffle bytes not counted")
	}
	if _, err := e.Repartition("bad", tb, -1); err == nil {
		t.Error("accepted negative np")
	}
}

func joinFixture(t *testing.T, e *Engine) (*Table, *Table) {
	t.Helper()
	strRows := makeRows(30, 3)
	imgRows := make([]Row, 30)
	for i := range imgRows {
		imgRows[i] = Row{
			ID:       int64(i),
			Image:    []byte{byte(i)},
			Features: tensor.NewTensorList(tensor.MustFromSlice([]float32{float32(i)}, 1)),
		}
	}
	ts, err := e.CreateTable("str", strRows, 4)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := e.CreateTable("img", imgRows, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ts, ti
}

func TestShuffleJoin(t *testing.T) {
	e := newTestEngine(t, testConfig())
	ts, ti := joinFixture(t, e)
	joined, err := e.Join("j", ts, ti, ShuffleJoin)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	rows, err := e.Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("joined %d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if r.Structured == nil || r.Image == nil || r.Features == nil {
			t.Fatalf("row %d missing payloads after join: %+v", r.ID, r)
		}
		if r.Features.Get(0).Data()[0] != float32(r.ID) {
			t.Fatalf("row %d features misaligned", r.ID)
		}
	}
}

func TestShuffleJoinRealignsPartitions(t *testing.T) {
	e := newTestEngine(t, testConfig())
	strRows := makeRows(20, 2)
	imgRows := make([]Row, 20)
	for i := range imgRows {
		imgRows[i] = Row{ID: int64(i), Image: []byte{1}}
	}
	ts, err := e.CreateTable("str", strRows, 4)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := e.CreateTable("img", imgRows, 7) // mismatched np
	if err != nil {
		t.Fatal(err)
	}
	joined, err := e.Join("j", ts, ti, ShuffleJoin)
	if err != nil {
		t.Fatalf("Join with mismatched np: %v", err)
	}
	n, err := joined.NumRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("joined rows = %d, want 20", n)
	}
}

func TestBroadcastJoin(t *testing.T) {
	e := newTestEngine(t, testConfig())
	ts, ti := joinFixture(t, e)
	joined, err := e.Join("j", ts, ti, BroadcastJoin)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	rows, err := e.Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("joined %d rows, want 30", len(rows))
	}
	snap := e.Counters().Snapshot()
	if snap.BytesBroadcast <= 0 {
		t.Error("broadcast bytes not counted")
	}
	for _, r := range rows {
		if r.Structured == nil || r.Image == nil {
			t.Fatalf("row %d missing payloads: %+v", r.ID, r)
		}
	}
}

func TestJoinInnerSemantics(t *testing.T) {
	e := newTestEngine(t, testConfig())
	left, err := e.CreateTable("l", makeRows(10, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	rightRows := []Row{{ID: 3, Image: []byte{1}}, {ID: 7, Image: []byte{2}}, {ID: 99, Image: []byte{3}}}
	right, err := e.CreateTable("r", rightRows, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []JoinKind{ShuffleJoin, BroadcastJoin} {
		joined, err := e.Join("j", left, right, kind)
		if err != nil {
			t.Fatalf("%v join: %v", kind, err)
		}
		rows, err := e.Collect(joined)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("%v join produced %d rows, want 2 (inner)", kind, len(rows))
		}
		if rows[0].ID != 3 || rows[1].ID != 7 {
			t.Fatalf("%v join wrong keys: %d, %d", kind, rows[0].ID, rows[1].ID)
		}
		joined.Drop()
	}
}

func TestJoinUnknownKind(t *testing.T) {
	e := newTestEngine(t, testConfig())
	ts, ti := joinFixture(t, e)
	if _, err := e.Join("j", ts, ti, JoinKind(42)); err == nil {
		t.Error("accepted unknown join kind")
	}
}

func TestJoinKindString(t *testing.T) {
	if ShuffleJoin.String() != "shuffle" || BroadcastJoin.String() != "broadcast" {
		t.Error("join kind names wrong")
	}
	if Deserialized.String() != "deserialized" || Serialized.String() != "serialized" {
		t.Error("persist format names wrong")
	}
}

func TestDropReleasesStorage(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(100, 50), 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.StorageUsed() <= 0 {
		t.Fatal("nothing cached")
	}
	tb.Drop()
	if e.StorageUsed() != 0 {
		t.Errorf("storage used after drop = %d", e.StorageUsed())
	}
	// Dropping nil and already-dropped tables is safe.
	tb.Drop()
	var nilT *Table
	nilT.Drop()
}

func TestSerializedFormatSmallerFootprint(t *testing.T) {
	rows := makeRows(200, 100) // zero-heavy payload compresses well
	cfgD := testConfig()
	cfgD.DefaultFormat = Deserialized
	eD := newTestEngine(t, cfgD)
	tD, err := eD.CreateTable("t", rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfgS := testConfig()
	cfgS.DefaultFormat = Serialized
	eS := newTestEngine(t, cfgS)
	tS, err := eS.CreateTable("t", rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tS.MemBytes() >= tD.MemBytes() {
		t.Errorf("serialized footprint %d not below deserialized %d", tS.MemBytes(), tD.MemBytes())
	}
	// Data must still be readable.
	got, err := eS.Collect(tS)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Errorf("collected %d rows from serialized table", len(got))
	}
}

func TestSparkSpillsUnderPressure(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Storage = memory.MB(0.5) // tiny storage forces spills
	e := newTestEngine(t, cfg)
	tb, err := e.CreateTable("big", makeRows(5000, 100), 8)
	if err != nil {
		t.Fatalf("Spark-like ingest should spill, not fail: %v", err)
	}
	snap := e.Counters().Snapshot()
	if snap.BytesSpilled <= 0 {
		t.Error("expected disk spills under storage pressure")
	}
	// Data survives the spills.
	rows, err := e.Collect(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5000 {
		t.Errorf("collected %d rows, want 5000", len(rows))
	}
	if e.Counters().Snapshot().BytesUnspilled <= 0 {
		t.Error("collect should have read spilled partitions back")
	}
}

func TestIgniteCrashesUnderPressure(t *testing.T) {
	cfg := testConfig()
	cfg.Kind = memory.IgniteLike
	cfg.Nodes = 1
	cfg.Apportion.Storage = memory.MB(0.5)
	e := newTestEngine(t, cfg)
	_, err := e.CreateTable("big", makeRows(5000, 100), 8)
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("memory-only system should crash with OOM, got %v", err)
	}
	if oom.Scenario != memory.StorageExhausted {
		t.Errorf("scenario = %v, want storage-exhausted", oom.Scenario)
	}
}

func TestUserMemoryCrashInUDF(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.User = memory.MB(1)
	e := newTestEngine(t, cfg)
	tb, err := e.CreateTable("t", makeRows(10, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	// UDF inflates rows with large feature tensors exceeding User Memory.
	_, err = e.MapPartitions("inflate", tb, func(_ *TaskContext, in []Row) ([]Row, error) {
		out := make([]Row, len(in))
		for i, r := range in {
			c := r.Clone()
			c.Features = tensor.NewTensorList(tensor.New(1 << 18)) // 1 MB each
			out[i] = c
		}
		return out, nil
	})
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("expected user-memory OOM, got %v", err)
	}
	if oom.Scenario != memory.InsufficientUser {
		t.Errorf("scenario = %v, want insufficient-user-memory (crash scenario 2)", oom.Scenario)
	}
}

func TestCoreMemoryCrashInJoin(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.Core = 16 // essentially no join memory
	e := newTestEngine(t, cfg)
	ts, ti := joinFixture(t, e)
	_, err := e.Join("j", ts, ti, ShuffleJoin)
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("expected core-memory OOM, got %v", err)
	}
	if oom.Scenario != memory.LargePartition {
		t.Errorf("scenario = %v, want oversized-partition (crash scenario 3)", oom.Scenario)
	}
}

func TestBroadcastCrashWhenTooLarge(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 1
	cfg.Apportion.User = memory.MB(1)
	e := newTestEngine(t, cfg)
	big, err := e.CreateTable("big", makeRows(3000, 100), 4)
	if err != nil {
		t.Fatal(err)
	}
	small, err := e.CreateTable("small", makeRows(10, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Join("j", big, small, BroadcastJoin)
	if _, ok := memory.IsOOM(err); !ok {
		t.Fatalf("expected broadcast OOM (Figure 10 crash), got %v", err)
	}
}

func TestDriverOOMOnCollect(t *testing.T) {
	cfg := testConfig()
	cfg.DriverMemory = 1024
	e := newTestEngine(t, cfg)
	tb, err := e.CreateTable("t", makeRows(1000, 100), 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Collect(tb)
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("expected driver OOM, got %v", err)
	}
	if oom.Scenario != memory.DriverOOM {
		t.Errorf("scenario = %v, want driver-oom (crash scenario 4)", oom.Scenario)
	}
	if !strings.Contains(oom.Error(), "collect") {
		t.Errorf("error lacks collect context: %v", oom)
	}
}

func TestPartitionRowsBounds(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(10, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.PartitionRows(-1); err == nil {
		t.Error("accepted negative partition index")
	}
	if _, err := tb.PartitionRows(2); err == nil {
		t.Error("accepted out-of-range partition index")
	}
	rows, err := tb.PartitionRows(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if int(r.ID)%2 != 0 {
			t.Fatalf("hash partitioning broken: ID %d in partition 0", r.ID)
		}
	}
}

func TestEngineCloseIdempotent(t *testing.T) {
	e := newTestEngine(t, testConfig())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second Close failed")
	}
}

func TestTaskContextUserAccounting(t *testing.T) {
	e := newTestEngine(t, testConfig())
	tb, err := e.CreateTable("t", makeRows(4, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.MapPartitions("m", tb, func(tc *TaskContext, in []Row) ([]Row, error) {
		if err := tc.AllocUser(memory.MB(1), "scratch"); err != nil {
			return nil, err
		}
		tc.FreeUser(memory.MB(1))
		tc.AddFLOPs(100)
		return in, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Counters().Snapshot().FLOPs < 200 {
		t.Error("FLOPs not accumulated from tasks")
	}
	for i := 0; i < e.Config().Nodes; i++ {
		if e.UserPool(i).Used() != 0 {
			t.Errorf("node %d user memory leaked: %d", i, e.UserPool(i).Used())
		}
	}
}
