package dataflow

import (
	"container/list"
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/memory"
)

// storageCache manages one node's Storage Memory: cached partitions in LRU
// order charged against a memory pool. Under pressure, a Spark-like system
// evicts the least-recently-used partition to a real spill file on disk; an
// Ignite-like (memory-only) system surfaces a StorageExhausted crash —
// exactly the behavioral split behind the paper's Figure 6 Ignite/Eager
// crash and Spark/Eager slowdown.
type storageCache struct {
	node   *node
	engine *Engine
	pool   *memory.Pool

	// lru holds *Partition; front = most recently used. Guarded by the
	// pool-independent mutex in Engine via single-writer discipline: all
	// mutations go through add/touch/evict which take the engine lock.
	lru   *list.List
	index map[int64]*list.Element
}

func newStorageCache(n *node, e *Engine, capacity int64) *storageCache {
	scenario := memory.StorageExhausted
	return &storageCache{
		node:   n,
		engine: e,
		pool:   memory.NewPool(memory.Storage, scenario, capacity),
		lru:    list.New(),
		index:  make(map[int64]*list.Element),
	}
}

// add caches a partition, serializing it first if the engine's default
// format asks for it, evicting (Spark) or failing (Ignite) under pressure.
func (sc *storageCache) add(p *Partition) error {
	sc.engine.mu.Lock()
	defer sc.engine.mu.Unlock()

	if sc.engine.cfg.DefaultFormat == Serialized {
		p.mu.Lock()
		if _, err := p.serializeLocked(); err != nil {
			p.mu.Unlock()
			return err
		}
		p.mu.Unlock()
	}
	need := p.MemBytes()
	detail := fmt.Sprintf("cache partition %d (%s)", p.index, memory.FormatBytes(need))

	err := sc.pool.TryAllocOrEvict(need, detail, func(int64) int64 {
		if !sc.engine.cfg.Kind.SupportsSpill() {
			return 0 // memory-only system: nothing evictable
		}
		return sc.evictLRULocked()
	})
	if err != nil {
		return err
	}
	sc.index[p.id] = sc.lru.PushFront(p)
	sc.updatePeak()
	return nil
}

// evictLRULocked spills the least-recently-used partition and returns the
// bytes it released from the pool (0 if nothing remains).
func (sc *storageCache) evictLRULocked() int64 {
	back := sc.lru.Back()
	if back == nil {
		return 0
	}
	p := back.Value.(*Partition)
	charged := p.MemBytes()
	written, err := p.spill(sc.engine.spillDir)
	if err != nil {
		// Disk trouble: drop the partition from cache anyway (its rows stay
		// readable in memory) and release its charge — the cache no longer
		// tracks it, so keeping the charge would leak Storage-pool bytes
		// forever and fabricate StorageExhausted crashes on healthy runs.
		sc.lru.Remove(back)
		delete(sc.index, p.id)
		sc.pool.Free(charged)
		return charged
	}
	sc.engine.counters.BytesSpilled.Add(written)
	sc.engine.counters.Spills.Add(1)
	sc.engine.noteSpillLocked(p.SpillPath())
	sc.lru.Remove(back)
	delete(sc.index, p.id)
	sc.pool.Free(charged)
	return charged
}

// touch loads a partition's rows for processing, unspilling it (and charging
// storage) if it was evicted; it also refreshes LRU recency.
func (sc *storageCache) touch(p *Partition) ([]Row, error) {
	sc.engine.mu.Lock()
	if el, ok := sc.index[p.id]; ok {
		sc.lru.MoveToFront(el)
	}
	spilled := p.Spilled()
	sc.engine.mu.Unlock()

	if spilled {
		// Read back from disk, then re-admit to the cache.
		sc.engine.mu.Lock()
		defer sc.engine.mu.Unlock()
		if p.Spilled() { // re-check under lock
			path := p.SpillPath()
			n, err := p.unspill(sc.engine.cfg.DefaultFormat)
			if err != nil {
				return nil, err
			}
			sc.engine.noteUnspillLocked(path)
			sc.engine.counters.BytesUnspilled.Add(n)
			sc.engine.counters.Unspills.Add(1)
			err = faultinject.Hit(FaultUnspillAdmit)
			if err == nil {
				err = sc.pool.TryAllocOrEvict(n, "unspill", func(int64) int64 {
					if !sc.engine.cfg.Kind.SupportsSpill() {
						return 0
					}
					return sc.evictLRULocked()
				})
			}
			if err != nil {
				// The rows are already resident but the pool refused the
				// charge: re-spill (or, under disk trouble, discard) so the
				// partition never lingers as memory the model can't see.
				// The recovery spill is a real disk write: it must move the
				// same counters the eviction path moves, or instrumentation
				// (and sim.CompareTrace's spill-volume comparison)
				// undercounts I/O.
				if written, spillErr := p.spill(sc.engine.spillDir); spillErr != nil {
					p.discard()
				} else {
					sc.engine.counters.BytesSpilled.Add(written)
					sc.engine.counters.Spills.Add(1)
					sc.engine.noteSpillLocked(p.SpillPath())
				}
				return nil, err
			}
			sc.index[p.id] = sc.lru.PushFront(p)
			sc.updatePeak()
		}
		return p.Rows()
	}
	return p.Rows()
}

// drop removes a partition from the cache and releases its storage charge.
func (sc *storageCache) drop(p *Partition) {
	sc.engine.mu.Lock()
	defer sc.engine.mu.Unlock()
	if el, ok := sc.index[p.id]; ok {
		charged := p.MemBytes()
		sc.lru.Remove(el)
		delete(sc.index, p.id)
		sc.pool.Free(charged)
	}
	sc.engine.noteUnspillLocked(p.SpillPath())
	p.discard()
}

func (sc *storageCache) updatePeak() {
	var total int64
	for _, n := range sc.engine.nodes {
		total += n.storage.pool.Used()
	}
	maxStore(&sc.engine.counters.PeakStorageBytes, total)
}
