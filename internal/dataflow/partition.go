package dataflow

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Failpoint sites (see internal/faultinject) on the spill I/O edges.
const (
	// FaultSpillWrite is the byte site for spill-file writes; a torn write
	// there must never leave a partial spill file behind.
	FaultSpillWrite = "dataflow/spill.write"
	// FaultUnspillRead guards reading a spill file back.
	FaultUnspillRead = "dataflow/unspill.read"
	// FaultUnspillAdmit models the storage pool refusing to re-admit an
	// unspilled partition (the touch recovery path).
	FaultUnspillAdmit = "dataflow/unspill.admit"
)

// PersistFormat selects how a cached partition is held in Storage Memory
// (Section 4.2.3): deserialized rows, or a compressed serialized blob that is
// smaller but costs CPU to translate.
type PersistFormat int

// Persistence formats.
const (
	// Deserialized keeps live Row values.
	Deserialized PersistFormat = iota
	// Serialized keeps a flate-compressed binary blob.
	Serialized
)

// String implements fmt.Stringer.
func (f PersistFormat) String() string {
	if f == Serialized {
		return "serialized"
	}
	return "deserialized"
}

var partitionIDs atomic.Int64

// Partition is one horizontal slice of a table. Its contents live in exactly
// one of three states: deserialized rows, a serialized blob, or a spill file
// on disk.
type Partition struct {
	id    int64
	index int // position within the table

	mu        sync.Mutex
	rows      []Row
	blob      []byte
	spillPath string
	format    PersistFormat
	memBytes  int64 // current storage-memory charge
}

// newPartition wraps rows into a deserialized partition.
func newPartition(index int, rows []Row) *Partition {
	p := &Partition{id: partitionIDs.Add(1), index: index, rows: rows, format: Deserialized}
	p.memBytes = rowsMemBytes(rows)
	return p
}

func rowsMemBytes(rows []Row) int64 {
	var n int64
	for i := range rows {
		n += rows[i].MemBytes()
	}
	return n
}

// Index returns the partition's position within its table.
func (p *Partition) Index() int { return p.index }

// NumRows returns the row count without materializing spilled data (it loads
// a spilled partition's metadata lazily by decoding; callers on hot paths
// should rely on Rows instead).
func (p *Partition) NumRows() (int, error) {
	rows, err := p.Rows()
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// MemBytes returns the partition's current Storage Memory charge (0 when
// spilled to disk).
func (p *Partition) MemBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spillPath != "" {
		return 0
	}
	return p.memBytes
}

// Format returns the partition's persistence format.
func (p *Partition) Format() PersistFormat {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.format
}

// Spilled reports whether the partition currently lives on disk.
func (p *Partition) Spilled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spillPath != ""
}

// SpillPath returns the partition's current spill file path ("" when
// resident); the engine uses it to track files for crash-time cleanup.
func (p *Partition) SpillPath() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spillPath
}

// Rows materializes the partition's rows, reading back spilled or serialized
// data as needed. The returned slice must be treated as read-only.
func (p *Partition) Rows() ([]Row, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rowsLocked()
}

func (p *Partition) rowsLocked() ([]Row, error) {
	if p.rows != nil {
		return p.rows, nil
	}
	blob := p.blob
	if blob == nil && p.spillPath != "" {
		if err := faultinject.Hit(FaultUnspillRead); err != nil {
			return nil, fmt.Errorf("dataflow: read spill: %w", err)
		}
		b, err := os.ReadFile(p.spillPath)
		if err != nil {
			return nil, fmt.Errorf("dataflow: read spill: %w", err)
		}
		blob = b
	}
	if blob == nil {
		return nil, nil // genuinely empty
	}
	rows, err := DecodeRows(blob)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// serializeLocked converts the partition to its serialized in-memory form and
// returns the blob size. No-op if already serialized.
func (p *Partition) serializeLocked() (int64, error) {
	if p.format == Serialized && p.blob != nil {
		return int64(len(p.blob)), nil
	}
	rows, err := p.rowsLocked()
	if err != nil {
		return 0, err
	}
	blob, err := EncodeRows(rows)
	if err != nil {
		return 0, err
	}
	p.blob = blob
	p.rows = nil
	p.format = Serialized
	p.memBytes = int64(len(blob))
	return p.memBytes, nil
}

// spill writes the partition to dir and drops its in-memory contents,
// returning the number of bytes written.
func (p *Partition) spill(dir string) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spillPath != "" {
		return 0, nil
	}
	blob := p.blob
	if blob == nil {
		rows, err := p.rowsLocked()
		if err != nil {
			return 0, err
		}
		blob, err = EncodeRows(rows)
		if err != nil {
			return 0, err
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("part-%d.spill", p.id))
	payload := blob
	if v := faultinject.HitBytes(FaultSpillWrite, int64(len(blob))); v.Err != nil {
		// A torn write: persist the prefix a dying disk would leave, then
		// clean it up — a failed spill must not strand an orphan file.
		if v.Allowed > 0 {
			os.WriteFile(path, blob[:v.Allowed], 0o600)
		}
		os.Remove(path)
		return 0, fmt.Errorf("dataflow: spill: %w", v.Err)
	} else if v.SilentTear {
		// A silent torn write: the spill "succeeds" but only a prefix is
		// durable; the corruption surfaces as a typed decode error at
		// unspill time, never as a wrong answer.
		payload = blob[:v.Allowed]
	}
	if err := os.WriteFile(path, payload, 0o600); err != nil {
		return 0, fmt.Errorf("dataflow: spill: %w", err)
	}
	p.spillPath = path
	p.rows = nil
	p.blob = nil
	return int64(len(blob)), nil
}

// unspillLocked loads a spilled partition back into memory in the given
// format and returns its new memory charge.
func (p *Partition) unspill(format PersistFormat) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spillPath == "" {
		return p.memBytes, nil
	}
	if err := faultinject.Hit(FaultUnspillRead); err != nil {
		return 0, fmt.Errorf("dataflow: unspill: %w", err)
	}
	blob, err := os.ReadFile(p.spillPath)
	if err != nil {
		return 0, fmt.Errorf("dataflow: unspill: %w", err)
	}
	if err := os.Remove(p.spillPath); err != nil {
		return 0, fmt.Errorf("dataflow: unspill: %w", err)
	}
	p.spillPath = ""
	if format == Serialized {
		p.blob = blob
		p.format = Serialized
		p.memBytes = int64(len(blob))
	} else {
		rows, err := DecodeRows(blob)
		if err != nil {
			return 0, err
		}
		p.rows = rows
		p.format = Deserialized
		p.memBytes = rowsMemBytes(rows)
	}
	return p.memBytes, nil
}

// discard removes any spill file; used when a table is dropped.
func (p *Partition) discard() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.spillPath != "" {
		os.Remove(p.spillPath)
		p.spillPath = ""
	}
	p.rows = nil
	p.blob = nil
	p.memBytes = 0
}
