// Package ml implements the downstream ML routines M of the feature-transfer
// workload (Section 3.2, step 4): distributed elastic-net logistic
// regression (the paper's main M), a CART decision tree, and a multi-layer
// perceptron, plus train/test evaluation with F1 scoring (Section 5.2).
//
// Training consumes dataflow tables whose rows carry [structured features,
// CNN feature vectors]; StructuredPlusFeature builds the extractor that
// concatenates them for one emitted layer. Logistic regression trains
// distributed (gradient aggregation via ForEachPartition, so its working
// set is charged to the engine's pools); the tree and MLP collect to the
// driver first, reproducing the paper's driver-memory pressure for
// collect-style trainers. IsTestID provides the deterministic train/test
// split shared by every trainer.
package ml
