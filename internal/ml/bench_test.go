package ml

import "testing"

func BenchmarkTrainLogReg(b *testing.B) {
	rows := linearlySeparableRows(1000, 64, 1)
	cfg := DefaultLogRegConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainLogRegRows(rows, StructuredOnly(), 64, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainTree(b *testing.B) {
	rows := linearlySeparableRows(1000, 32, 2)
	cfg := DefaultTreeConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainTree(rows, StructuredOnly(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainMLP(b *testing.B) {
	rows := linearlySeparableRows(500, 32, 3)
	cfg := MLPConfig{Hidden: []int{16}, Iterations: 5, BatchSize: 32, LearningRate: 0.1, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainMLP(rows, StructuredOnly(), 32, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rows := linearlySeparableRows(100, 256, 4)
	m, err := TrainLogRegRows(rows, StructuredOnly(), 256, DefaultLogRegConfig())
	if err != nil {
		b.Fatal(err)
	}
	x := rows[0].Structured
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
