package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataflow"
)

// MLP is a multi-layer perceptron binary classifier trained with mini-batch
// SGD — the downstream model of the paper's TFT+Beam comparison ("a 3-layer
// MLP (each hidden layer has 1024 units) ... using distributed TF/Horovod",
// Section 5.1).
type MLP struct {
	// hidden[i] holds layer i's weights (rows × cols row-major) and biases.
	weights [][]float32
	biases  [][]float32
	dims    []int // layer widths: in, hidden..., 1
}

// MLPConfig sets the network shape and SGD hyper-parameters.
type MLPConfig struct {
	Hidden       []int
	Iterations   int
	BatchSize    int
	LearningRate float64
	Seed         int64
}

// DefaultMLPConfig returns a small two-hidden-layer network.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Hidden: []int{32, 16}, Iterations: 10, BatchSize: 32, LearningRate: 0.05, Seed: 1}
}

// NewMLP initializes a network for dim input features.
func NewMLP(dim int, cfg MLPConfig) (*MLP, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("ml: non-positive input dim %d", dim)
	}
	dims := append([]int{dim}, cfg.Hidden...)
	dims = append(dims, 1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &MLP{dims: dims}
	for l := 0; l+1 < len(dims); l++ {
		in, out := dims[l], dims[l+1]
		w := make([]float32, in*out)
		std := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = float32(rng.NormFloat64() * std)
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float32, out))
	}
	return m, nil
}

// forward runs the network, returning all layer activations (post-ReLU for
// hidden layers, sigmoid for the output).
func (m *MLP) forward(x []float32) [][]float32 {
	acts := make([][]float32, len(m.dims))
	acts[0] = x
	for l := 0; l+1 < len(m.dims); l++ {
		in, out := m.dims[l], m.dims[l+1]
		a := make([]float32, out)
		w, b := m.weights[l], m.biases[l]
		prev := acts[l]
		for o := 0; o < out; o++ {
			sum := float64(b[o])
			base := o * in
			for i := 0; i < in; i++ {
				sum += float64(w[base+i]) * float64(prev[i])
			}
			if l+2 < len(m.dims) { // hidden: ReLU
				if sum < 0 {
					sum = 0
				}
				a[o] = float32(sum)
			} else { // output: sigmoid
				a[o] = float32(1 / (1 + math.Exp(-sum)))
			}
		}
		acts[l+1] = a
	}
	return acts
}

// Predict returns the positive-class probability.
func (m *MLP) Predict(x []float32) float32 {
	acts := m.forward(x)
	return acts[len(acts)-1][0]
}

// TrainMLP fits the network on rows with mini-batch SGD and backpropagation.
func TrainMLP(rows []dataflow.Row, extract FeatureFunc, dim int, cfg MLPConfig) (*MLP, error) {
	m, err := NewMLP(dim, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Iterations <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("ml: invalid MLP config %+v", cfg)
	}
	examples := make([]example, 0, len(rows))
	for i := range rows {
		x, y, err := extract(&rows[i])
		if err != nil {
			return nil, err
		}
		if len(x) != dim {
			return nil, fmt.Errorf("ml: row %d has %d features, want %d", rows[i].ID, len(x), dim)
		}
		examples = append(examples, example{x: x, y: y})
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: no training rows")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for iter := 0; iter < cfg.Iterations; iter++ {
		rng.Shuffle(len(examples), func(i, j int) { examples[i], examples[j] = examples[j], examples[i] })
		for start := 0; start < len(examples); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(examples) {
				end = len(examples)
			}
			m.sgdStep(examples[start:end], cfg.LearningRate)
		}
	}
	return m, nil
}

// sgdStep applies one mini-batch gradient update via backpropagation.
func (m *MLP) sgdStep(batch []example, lr float64) {
	nLayers := len(m.weights)
	gradW := make([][]float64, nLayers)
	gradB := make([][]float64, nLayers)
	for l := range m.weights {
		gradW[l] = make([]float64, len(m.weights[l]))
		gradB[l] = make([]float64, len(m.biases[l]))
	}
	for _, e := range batch {
		acts := m.forward(e.x)
		// Output delta (sigmoid + log loss): p − y.
		deltas := make([][]float64, nLayers)
		out := acts[len(acts)-1][0]
		deltas[nLayers-1] = []float64{float64(out) - float64(e.y)}
		// Hidden deltas, back to front.
		for l := nLayers - 2; l >= 0; l-- {
			in, outDim := m.dims[l+1], m.dims[l+2]
			d := make([]float64, in)
			wNext := m.weights[l+1]
			for i := 0; i < in; i++ {
				if acts[l+1][i] <= 0 { // ReLU gate
					continue
				}
				var sum float64
				for o := 0; o < outDim; o++ {
					sum += float64(wNext[o*in+i]) * deltas[l+1][o]
				}
				d[i] = sum
			}
			deltas[l] = d
		}
		for l := 0; l < nLayers; l++ {
			in := m.dims[l]
			for o, d := range deltas[l] {
				gradB[l][o] += d
				base := o * in
				for i := 0; i < in; i++ {
					gradW[l][base+i] += d * float64(acts[l][i])
				}
			}
		}
	}
	scale := lr / float64(len(batch))
	for l := 0; l < nLayers; l++ {
		for i := range m.weights[l] {
			m.weights[l][i] -= float32(scale * gradW[l][i])
		}
		for i := range m.biases[l] {
			m.biases[l][i] -= float32(scale * gradB[l][i])
		}
	}
}
