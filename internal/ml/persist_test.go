package ml

import (
	"math"
	"path/filepath"
	"testing"
)

// predictionsMatch checks that two models agree on a probe set.
func predictionsMatch(t *testing.T, a, b Model, dim int) {
	t.Helper()
	probes := linearlySeparableRows(50, dim, 99)
	for i := range probes {
		pa := a.Predict(probes[i].Structured)
		pb := b.Predict(probes[i].Structured)
		if math.Abs(float64(pa-pb)) > 1e-6 {
			t.Fatalf("probe %d: %v vs %v", i, pa, pb)
		}
	}
}

func TestLogRegRoundTrip(t *testing.T) {
	rows := linearlySeparableRows(200, 8, 1)
	m, err := TrainLogRegRows(rows, StructuredOnly(), 8, DefaultLogRegConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if _, ok := got.(*LogisticRegression); !ok {
		t.Fatalf("wrong type %T", got)
	}
	predictionsMatch(t, m, got, 8)
}

func TestTreeRoundTrip(t *testing.T) {
	rows := linearlySeparableRows(300, 4, 2)
	m, err := TrainTree(rows, StructuredOnly(), TreeConfig{MaxDepth: 5, MinLeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	tree, ok := got.(*DecisionTree)
	if !ok {
		t.Fatalf("wrong type %T", got)
	}
	if tree.Depth() != m.Depth() {
		t.Errorf("depth %d vs %d", tree.Depth(), m.Depth())
	}
	predictionsMatch(t, m, got, 4)
}

func TestMLPRoundTrip(t *testing.T) {
	rows := linearlySeparableRows(200, 6, 3)
	cfg := MLPConfig{Hidden: []int{8, 4}, Iterations: 5, BatchSize: 16, LearningRate: 0.1, Seed: 2}
	m, err := TrainMLP(rows, StructuredOnly(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	predictionsMatch(t, m, got, 6)
}

func TestSaveLoadModelFile(t *testing.T) {
	rows := linearlySeparableRows(100, 3, 4)
	m, err := TrainLogRegRows(rows, StructuredOnly(), 3, DefaultLogRegConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, m); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	predictionsMatch(t, m, got, 3)
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestUnmarshalValidation(t *testing.T) {
	cases := []string{
		`not json`,
		`{"kind":"unknown","payload":{}}`,
		`{"kind":"logistic-regression","payload":{}}`,                            // no weights
		`{"kind":"logistic-regression","payload":{"W":[1],"Mu":[0]}}`,            // Mu without Sigma
		`{"kind":"decision-tree","payload":{}}`,                                  // no root
		`{"kind":"mlp","payload":{"dims":[2,1],"weights":[[1]],"biases":[[0]]}}`, // wrong weight len
		`{"kind":"mlp","payload":{"dims":[2],"weights":[],"biases":[]}}`,         // too few dims
	}
	for i, c := range cases {
		if _, err := Unmarshal([]byte(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

type fakeModel struct{}

func (fakeModel) Predict([]float32) float32 { return 0 }

func TestMarshalUnknownType(t *testing.T) {
	if _, err := Marshal(fakeModel{}); err == nil {
		t.Error("unknown model type accepted")
	}
}
