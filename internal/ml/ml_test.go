package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/memory"
	"repro/internal/tensor"
)

// linearlySeparableRows builds rows whose label is determined by the sign of
// a noisy linear function of the structured features.
func linearlySeparableRows(n, dim int, seed int64) []dataflow.Row {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	rows := make([]dataflow.Row, n)
	for i := range rows {
		x := make([]float32, dim)
		var z float64
		for j := range x {
			x[j] = float32(rng.NormFloat64())
			z += w[j] * float64(x[j])
		}
		label := float32(0)
		if z+0.3*rng.NormFloat64() > 0 {
			label = 1
		}
		rows[i] = dataflow.Row{ID: int64(i), Label: label, Structured: x}
	}
	return rows
}

func TestLogRegLearnsLinearSeparation(t *testing.T) {
	rows := linearlySeparableRows(600, 8, 1)
	train, test := SplitByID(rows, 0.25)
	cfg := LogRegConfig{Iterations: 60, LearningRate: 0.8, Alpha: 0.5, Lambda: 0.001}
	m, err := TrainLogRegRows(train, StructuredOnly(), 8, cfg)
	if err != nil {
		t.Fatalf("TrainLogRegRows: %v", err)
	}
	met, err := Evaluate(m, test, StructuredOnly())
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.8 {
		t.Errorf("accuracy = %.3f, want >= 0.8 on separable data", met.Accuracy)
	}
	if met.F1 <= 0 {
		t.Error("F1 = 0 on learnable data")
	}
}

func TestDistributedLogRegMatchesLocal(t *testing.T) {
	rows := linearlySeparableRows(400, 6, 2)
	e, err := dataflow.NewEngine(dataflow.Config{
		Nodes: 2, CoresPerNode: 2, Kind: memory.SparkLike,
		Apportion: memory.Apportionment{
			User: memory.MB(64), Core: memory.MB(64), Storage: memory.MB(64), DLExecution: memory.MB(8),
		},
		DriverMemory: memory.MB(64),
		SpillDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tb, err := e.CreateTable("t", rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LogRegConfig{Iterations: 20, LearningRate: 0.5, Alpha: 0.5, Lambda: 0.01}
	dist, err := TrainLogReg(e, tb, StructuredOnly(), 6, cfg)
	if err != nil {
		t.Fatalf("TrainLogReg: %v", err)
	}
	local, err := TrainLogRegRows(rows, StructuredOnly(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Full-batch GD is order-independent: distributed and local training
	// must agree to float tolerance.
	for j := range dist.W {
		if d := float64(dist.W[j] - local.W[j]); math.Abs(d) > 1e-3 {
			t.Fatalf("weight %d differs: dist %v vs local %v", j, dist.W[j], local.W[j])
		}
	}
	if e.Counters().Snapshot().FLOPs <= 0 {
		t.Error("training FLOPs not recorded")
	}
}

func TestTrainLogRegDriverOOM(t *testing.T) {
	// Gradient aggregation over an enormous feature space exceeds driver
	// memory — the Section 4.1 scenario 4 path in distributed training.
	rows := make([]dataflow.Row, 4)
	const dim = 1 << 16
	for i := range rows {
		rows[i] = dataflow.Row{ID: int64(i), Label: float32(i % 2), Structured: make([]float32, dim)}
	}
	e, err := dataflow.NewEngine(dataflow.Config{
		Nodes: 1, CoresPerNode: 1, Kind: memory.SparkLike,
		Apportion: memory.Apportionment{
			User: memory.MB(64), Core: memory.MB(64), Storage: memory.MB(64),
		},
		DriverMemory: 1024, // 1 KB driver: cannot hold a 512 KB gradient
		SpillDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tb, err := e.CreateTable("wide", rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainLogReg(e, tb, StructuredOnly(), dim, DefaultLogRegConfig())
	oom, ok := memory.IsOOM(err)
	if !ok {
		t.Fatalf("expected driver OOM, got %v", err)
	}
	if oom.Scenario != memory.DriverOOM {
		t.Errorf("scenario = %v, want driver-oom", oom.Scenario)
	}
}

func TestTrainLogRegValidation(t *testing.T) {
	rows := linearlySeparableRows(10, 3, 3)
	if _, err := TrainLogRegRows(rows, StructuredOnly(), 0, DefaultLogRegConfig()); err == nil {
		t.Error("accepted dim 0")
	}
	if _, err := TrainLogRegRows(nil, StructuredOnly(), 3, DefaultLogRegConfig()); err == nil {
		t.Error("accepted empty training set")
	}
	if _, err := TrainLogRegRows(rows, StructuredOnly(), 5, DefaultLogRegConfig()); err == nil {
		t.Error("accepted wrong dim")
	}
	bad := LogRegConfig{Iterations: 0}
	e, err := dataflow.NewEngine(dataflow.Config{Nodes: 1, CoresPerNode: 1,
		Apportion: memory.Apportionment{User: memory.MB(8), Core: memory.MB(8), Storage: memory.MB(8)}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tb, err := e.CreateTable("t", rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainLogReg(e, tb, StructuredOnly(), 3, bad); err == nil {
		t.Error("accepted zero iterations")
	}
}

func TestFeatureFuncs(t *testing.T) {
	r := dataflow.Row{
		ID: 1, Label: 1,
		Structured: []float32{1, 2},
		Features:   tensor.NewTensorList(tensor.MustFromSlice([]float32{3, 4, 5}, 3)),
	}
	x, y, err := StructuredOnly()(&r)
	if err != nil || y != 1 || len(x) != 2 {
		t.Fatalf("StructuredOnly: %v %v %v", x, y, err)
	}
	x, _, err = StructuredPlusFeature(0)(&r)
	if err != nil || len(x) != 5 || x[2] != 3 {
		t.Fatalf("StructuredPlusFeature: %v %v", x, err)
	}
	x, _, err = FeatureOnly(0)(&r)
	if err != nil || len(x) != 3 {
		t.Fatalf("FeatureOnly: %v %v", x, err)
	}
	if _, _, err := StructuredPlusFeature(5)(&r); err == nil {
		t.Error("out-of-range feature index accepted")
	}
	bare := dataflow.Row{ID: 2}
	if _, _, err := FeatureOnly(0)(&bare); err == nil {
		t.Error("missing features accepted")
	}
	// Rank-2 feature tensors are rejected.
	r2 := dataflow.Row{Features: tensor.NewTensorList(tensor.New(2, 2))}
	if _, _, err := StructuredPlusFeature(0)(&r2); err == nil {
		t.Error("rank-2 feature tensor accepted")
	}
}

func TestStructuredPlusConcat(t *testing.T) {
	r := dataflow.Row{
		ID: 1, Label: 1,
		Structured: []float32{1, 2},
		Features: tensor.NewTensorList(
			tensor.MustFromSlice([]float32{3, 4}, 2),
			tensor.MustFromSlice([]float32{5}, 1),
		),
	}
	x, y, err := StructuredPlusConcat(0, 1)(&r)
	if err != nil || y != 1 {
		t.Fatalf("concat: %v %v", x, err)
	}
	want := []float32{1, 2, 3, 4, 5}
	if len(x) != len(want) {
		t.Fatalf("len = %d, want %d", len(x), len(want))
	}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if _, _, err := StructuredPlusConcat(0, 5)(&r); err == nil {
		t.Error("out-of-range index accepted")
	}
	r2 := dataflow.Row{Features: tensor.NewTensorList(tensor.New(2, 2))}
	if _, _, err := StructuredPlusConcat(0)(&r2); err == nil {
		t.Error("rank-2 tensor accepted")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	// A fixed model: predict positive when x[0] >= 0.
	m := &LogisticRegression{W: []float32{10}, B: 0}
	rows := []dataflow.Row{
		{ID: 1, Label: 1, Structured: []float32{1}},  // TP
		{ID: 2, Label: 0, Structured: []float32{1}},  // FP
		{ID: 3, Label: 0, Structured: []float32{-1}}, // TN
		{ID: 4, Label: 1, Structured: []float32{-1}}, // FN
	}
	met, err := Evaluate(m, rows, StructuredOnly())
	if err != nil {
		t.Fatal(err)
	}
	if met.N != 4 || met.Accuracy != 0.5 || met.Precision != 0.5 || met.Recall != 0.5 || met.F1 != 0.5 {
		t.Errorf("metrics = %+v", met)
	}
	empty, err := Evaluate(m, nil, StructuredOnly())
	if err != nil || empty.N != 0 {
		t.Errorf("empty evaluate: %+v, %v", empty, err)
	}
}

func TestSplitByIDDeterministicAndDisjoint(t *testing.T) {
	rows := linearlySeparableRows(1000, 2, 4)
	tr1, te1 := SplitByID(rows, 0.2)
	tr2, te2 := SplitByID(rows, 0.2)
	if len(tr1) != len(tr2) || len(te1) != len(te2) {
		t.Fatal("split not deterministic")
	}
	if len(tr1)+len(te1) != 1000 {
		t.Fatal("split lost rows")
	}
	frac := float64(len(te1)) / 1000
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("test fraction = %.3f, want ~0.2", frac)
	}
	seen := map[int64]bool{}
	for _, r := range te1 {
		seen[r.ID] = true
	}
	for _, r := range tr1 {
		if seen[r.ID] {
			t.Fatalf("row %d in both splits", r.ID)
		}
	}
}

func TestDecisionTreeLearnsThreshold(t *testing.T) {
	// Label = x[1] > 0.5: a single split suffices.
	rng := rand.New(rand.NewSource(5))
	rows := make([]dataflow.Row, 400)
	for i := range rows {
		x := []float32{rng.Float32(), rng.Float32()}
		label := float32(0)
		if x[1] > 0.5 {
			label = 1
		}
		rows[i] = dataflow.Row{ID: int64(i), Label: label, Structured: x}
	}
	tree, err := TrainTree(rows, StructuredOnly(), TreeConfig{MaxDepth: 3, MinLeafSize: 5})
	if err != nil {
		t.Fatalf("TrainTree: %v", err)
	}
	met, err := Evaluate(tree, rows, StructuredOnly())
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.95 {
		t.Errorf("tree accuracy = %.3f, want >= 0.95 on axis-aligned data", met.Accuracy)
	}
	if tree.Depth() < 2 {
		t.Error("tree did not split")
	}
}

func TestDecisionTreePureLeaf(t *testing.T) {
	rows := []dataflow.Row{
		{ID: 1, Label: 1, Structured: []float32{0}},
		{ID: 2, Label: 1, Structured: []float32{1}},
	}
	tree, err := TrainTree(rows, StructuredOnly(), TreeConfig{MaxDepth: 3, MinLeafSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Error("pure labels should produce a single leaf")
	}
	if tree.Predict([]float32{0.5}) != 1 {
		t.Error("pure-positive leaf should predict 1")
	}
}

func TestTrainTreeValidation(t *testing.T) {
	if _, err := TrainTree(nil, StructuredOnly(), DefaultTreeConfig()); err == nil {
		t.Error("accepted empty rows")
	}
	rows := linearlySeparableRows(10, 2, 6)
	if _, err := TrainTree(rows, StructuredOnly(), TreeConfig{MaxDepth: 0}); err == nil {
		t.Error("accepted zero depth")
	}
	mixed := []dataflow.Row{
		{ID: 1, Structured: []float32{1}},
		{ID: 2, Structured: []float32{1, 2}},
	}
	if _, err := TrainTree(mixed, StructuredOnly(), DefaultTreeConfig()); err == nil {
		t.Error("accepted inconsistent dims")
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; an MLP with a hidden layer solves it.
	var rows []dataflow.Row
	id := int64(0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x := []float32{float32(a) + 0.1*rng.Float32(), float32(b) + 0.1*rng.Float32()}
		label := float32(a ^ b)
		rows = append(rows, dataflow.Row{ID: id, Label: label, Structured: x})
		id++
	}
	cfg := MLPConfig{Hidden: []int{8}, Iterations: 300, BatchSize: 16, LearningRate: 0.5, Seed: 3}
	m, err := TrainMLP(rows, StructuredOnly(), 2, cfg)
	if err != nil {
		t.Fatalf("TrainMLP: %v", err)
	}
	met, err := Evaluate(m, rows, StructuredOnly())
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.9 {
		t.Errorf("MLP accuracy on XOR = %.3f, want >= 0.9", met.Accuracy)
	}
}

func TestMLPValidation(t *testing.T) {
	if _, err := NewMLP(0, DefaultMLPConfig()); err == nil {
		t.Error("accepted dim 0")
	}
	rows := linearlySeparableRows(10, 2, 8)
	if _, err := TrainMLP(rows, StructuredOnly(), 2, MLPConfig{Hidden: []int{4}, Iterations: 0, BatchSize: 8}); err == nil {
		t.Error("accepted zero iterations")
	}
	if _, err := TrainMLP(nil, StructuredOnly(), 2, DefaultMLPConfig()); err == nil {
		t.Error("accepted empty rows")
	}
	if _, err := TrainMLP(rows, StructuredOnly(), 7, DefaultMLPConfig()); err == nil {
		t.Error("accepted wrong dim")
	}
}

func TestLogRegPredictShortInput(t *testing.T) {
	// Predict tolerates x shorter than W (treats missing as zero) rather
	// than panicking; training validates dims strictly.
	m := &LogisticRegression{W: []float32{1, 1, 1}, B: 0}
	if p := m.Predict([]float32{1}); p <= 0.5 {
		t.Errorf("short-input predict = %v", p)
	}
}
