package ml

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataflow"
)

// DecisionTree is a CART binary classifier with Gini-impurity splits — the
// alternative downstream model data scientists "often prefer ... on
// structured data" (Section 1.1), evaluated in Section 5.2.
type DecisionTree struct {
	root *treeNode
	// Dim is the expected feature dimensionality.
	Dim int
}

type treeNode struct {
	// Leaf prediction: fraction of positive examples.
	prob float32
	leaf bool
	// Split: feature index and threshold; left when x[feature] < threshold.
	feature     int
	threshold   float32
	left, right *treeNode
}

// TreeConfig sets the CART hyper-parameters.
type TreeConfig struct {
	MaxDepth    int
	MinLeafSize int
	// MaxFeatures caps the number of feature indices scanned per split
	// (evenly strided); 0 scans all. Keeps training tractable on wide CNN
	// feature vectors.
	MaxFeatures int
}

// DefaultTreeConfig mirrors a conventional shallow CART: the paper observes
// that conventional-depth trees don't benefit much from CNN features
// (Section 5.2) — which this reproduction's Figure 8 harness checks.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 6, MinLeafSize: 10, MaxFeatures: 64}
}

type example struct {
	x []float32
	y float32
}

// TrainTree fits a CART tree on the rows (driver-local, like MLlib's tree
// collect-and-fit for modest datasets).
func TrainTree(rows []dataflow.Row, extract FeatureFunc, cfg TreeConfig) (*DecisionTree, error) {
	if cfg.MaxDepth <= 0 {
		return nil, fmt.Errorf("ml: tree depth must be positive, got %d", cfg.MaxDepth)
	}
	if cfg.MinLeafSize <= 0 {
		cfg.MinLeafSize = 1
	}
	examples := make([]example, 0, len(rows))
	dim := -1
	for i := range rows {
		x, y, err := extract(&rows[i])
		if err != nil {
			return nil, err
		}
		if dim < 0 {
			dim = len(x)
		} else if len(x) != dim {
			return nil, fmt.Errorf("ml: inconsistent feature dims %d vs %d", len(x), dim)
		}
		examples = append(examples, example{x: x, y: y})
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("ml: no training rows")
	}
	t := &DecisionTree{Dim: dim}
	t.root = buildNode(examples, cfg, 0)
	return t, nil
}

func positiveFraction(ex []example) float32 {
	var pos int
	for _, e := range ex {
		if e.y >= 0.5 {
			pos++
		}
	}
	return float32(pos) / float32(len(ex))
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

func buildNode(ex []example, cfg TreeConfig, depth int) *treeNode {
	prob := positiveFraction(ex)
	if depth >= cfg.MaxDepth || len(ex) < 2*cfg.MinLeafSize || prob == 0 || prob == 1 {
		return &treeNode{leaf: true, prob: prob}
	}
	dim := len(ex[0].x)
	stride := 1
	if cfg.MaxFeatures > 0 && dim > cfg.MaxFeatures {
		stride = dim / cfg.MaxFeatures
	}

	bestFeature, bestThreshold := -1, float32(0)
	bestScore := math.Inf(1)
	idx := make([]int, len(ex))

	for f := 0; f < dim; f += stride {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return ex[idx[a]].x[f] < ex[idx[b]].x[f] })
		totalPos := 0
		for _, e := range ex {
			if e.y >= 0.5 {
				totalPos++
			}
		}
		leftPos := 0
		for i := 0; i < len(idx)-1; i++ {
			if ex[idx[i]].y >= 0.5 {
				leftPos++
			}
			nl := i + 1
			nr := len(ex) - nl
			if nl < cfg.MinLeafSize || nr < cfg.MinLeafSize {
				continue
			}
			if ex[idx[i]].x[f] == ex[idx[i+1]].x[f] {
				continue // no valid threshold between equal values
			}
			score := (float64(nl)*gini(leftPos, nl) + float64(nr)*gini(totalPos-leftPos, nr)) / float64(len(ex))
			if score < bestScore {
				bestScore = score
				bestFeature = f
				bestThreshold = (ex[idx[i]].x[f] + ex[idx[i+1]].x[f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, prob: prob}
	}
	var left, right []example
	for _, e := range ex {
		if e.x[bestFeature] < bestThreshold {
			left = append(left, e)
		} else {
			right = append(right, e)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &treeNode{leaf: true, prob: prob}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      buildNode(left, cfg, depth+1),
		right:     buildNode(right, cfg, depth+1),
	}
}

// Predict returns the positive-class probability.
func (t *DecisionTree) Predict(x []float32) float32 {
	n := t.root
	for !n.leaf {
		if int(n.feature) < len(x) && x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// Depth returns the tree's height (a single leaf has depth 1).
func (t *DecisionTree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
