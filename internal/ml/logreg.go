package ml

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dataflow"
)

// LogisticRegression is a binary classifier trained with elastic-net
// regularized gradient descent — the paper's downstream model in Figures 6
// and 8 ("logistic regression model with elastic net regularization with
// α = 0.5 and a regularization value of 0.01"). When trained with
// standardization, Mu and Sigma hold the per-dimension training statistics
// and Predict applies them, so callers never scale inputs themselves.
type LogisticRegression struct {
	W []float32
	B float32
	// Mu and Sigma are per-dimension standardization parameters (nil when
	// the model was trained on raw features).
	Mu, Sigma []float32
}

// Predict returns the positive-class probability.
func (m *LogisticRegression) Predict(x []float32) float32 {
	var z float64 = float64(m.B)
	n := len(x)
	if n > len(m.W) {
		n = len(m.W)
	}
	for i := 0; i < n; i++ {
		xv := float64(x[i])
		if m.Mu != nil {
			xv = (xv - float64(m.Mu[i])) / float64(m.Sigma[i])
		}
		z += float64(m.W[i]) * xv
	}
	return float32(1 / (1 + math.Exp(-z)))
}

// LogRegConfig sets the training hyper-parameters.
type LogRegConfig struct {
	// Iterations of full-batch gradient descent (paper: 10).
	Iterations int
	// LearningRate for the gradient step.
	LearningRate float64
	// Alpha mixes L1 vs L2 in the elastic net (paper: 0.5).
	Alpha float64
	// Lambda is the regularization strength (paper: 0.01).
	Lambda float64
	// Standardize z-scores each feature dimension on the training set
	// before fitting (standard MLlib-pipeline practice; essential when
	// concatenating structured features with raw CNN activations of very
	// different magnitudes).
	Standardize bool
}

// DefaultLogRegConfig mirrors the paper's Section 5 settings.
func DefaultLogRegConfig() LogRegConfig {
	return LogRegConfig{Iterations: 10, LearningRate: 0.5, Alpha: 0.5, Lambda: 0.01, Standardize: true}
}

// standardizer accumulates per-dimension moments and finalizes Mu/Sigma.
type standardizer struct {
	sum, sumSq []float64
	n          int64
}

func newStandardizer(dim int) *standardizer {
	return &standardizer{sum: make([]float64, dim), sumSq: make([]float64, dim)}
}

func (s *standardizer) add(x []float32) {
	for i, v := range x {
		s.sum[i] += float64(v)
		s.sumSq[i] += float64(v) * float64(v)
	}
	s.n++
}

func (s *standardizer) merge(o *standardizer) {
	for i := range s.sum {
		s.sum[i] += o.sum[i]
		s.sumSq[i] += o.sumSq[i]
	}
	s.n += o.n
}

// finalize returns Mu and Sigma (degenerate dimensions get sigma 1).
func (s *standardizer) finalize() (mu, sigma []float32) {
	mu = make([]float32, len(s.sum))
	sigma = make([]float32, len(s.sum))
	inv := 1 / float64(s.n)
	for i := range s.sum {
		m := s.sum[i] * inv
		v := s.sumSq[i]*inv - m*m
		if v < 1e-12 {
			v = 1
		}
		mu[i] = float32(m)
		sigma[i] = float32(math.Sqrt(v))
	}
	return mu, sigma
}

// TrainLogReg fits a logistic regression over a distributed table: every
// iteration aggregates per-partition gradient sums in parallel on the
// workers (through the engine's memory-accounted aggregation path) and takes
// one driver-side step. dim is the feature dimensionality of extract's
// output.
func TrainLogReg(e *dataflow.Engine, t *dataflow.Table, extract FeatureFunc, dim int, cfg LogRegConfig) (*LogisticRegression, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("ml: non-positive feature dim %d", dim)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("ml: non-positive iterations %d", cfg.Iterations)
	}
	model := &LogisticRegression{W: make([]float32, dim)}
	if cfg.Standardize {
		st := newStandardizer(dim)
		var mu sync.Mutex
		err := e.ForEachPartition(t, func(_ *dataflow.TaskContext, rows []dataflow.Row) error {
			local := newStandardizer(dim)
			for i := range rows {
				x, _, err := extract(&rows[i])
				if err != nil {
					return err
				}
				if len(x) != dim {
					return fmt.Errorf("ml: row %d has %d features, want %d", rows[i].ID, len(x), dim)
				}
				local.add(x)
			}
			mu.Lock()
			st.merge(local)
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if st.n == 0 {
			return nil, fmt.Errorf("ml: empty training table %s", t.Name)
		}
		model.Mu, model.Sigma = st.finalize()
	}

	// The driver accumulates one gradient vector per iteration (Section
	// 4.1, crash scenario 4: "the Driver may also have to collect partial
	// results from workers"); charge it once against driver memory.
	gradBytes := int64(dim) * 8
	if err := e.DriverPool().Alloc(gradBytes, fmt.Sprintf("gradient aggregation over %d features", dim)); err != nil {
		return nil, err
	}
	defer e.DriverPool().Free(gradBytes)

	for iter := 0; iter < cfg.Iterations; iter++ {
		grad := make([]float64, dim)
		var gradB float64
		var count int64
		var mu sync.Mutex

		err := e.ForEachPartition(t, func(tc *dataflow.TaskContext, rows []dataflow.Row) error {
			localGrad := make([]float64, dim)
			var localB float64
			var localN int64
			for i := range rows {
				x, y, err := extract(&rows[i])
				if err != nil {
					return err
				}
				if len(x) != dim {
					return fmt.Errorf("ml: row %d has %d features, want %d", rows[i].ID, len(x), dim)
				}
				p := float64(model.Predict(x))
				diff := p - float64(y)
				for j, xv := range x {
					localGrad[j] += diff * model.scaled(j, xv)
				}
				localB += diff
				localN++
			}
			tc.AddFLOPs(int64(dim) * 4 * localN) // predict + gradient accumulate
			mu.Lock()
			for j := range grad {
				grad[j] += localGrad[j]
			}
			gradB += localB
			count += localN
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if count == 0 {
			return nil, fmt.Errorf("ml: empty training table %s", t.Name)
		}
		inv := 1 / float64(count)
		for j := range model.W {
			w := float64(model.W[j])
			g := grad[j]*inv + cfg.Lambda*(cfg.Alpha*sign(w)+(1-cfg.Alpha)*w)
			model.W[j] = float32(w - cfg.LearningRate*g)
		}
		model.B = float32(float64(model.B) - cfg.LearningRate*gradB*inv)
	}
	return model, nil
}

// scaled maps a raw feature value to the model's training scale.
func (m *LogisticRegression) scaled(j int, v float32) float64 {
	if m.Mu == nil {
		return float64(v)
	}
	return (float64(v) - float64(m.Mu[j])) / float64(m.Sigma[j])
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// TrainLogRegRows fits on an in-memory row slice (driver-local training, used
// for evaluation splits and tests).
func TrainLogRegRows(rows []dataflow.Row, extract FeatureFunc, dim int, cfg LogRegConfig) (*LogisticRegression, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("ml: non-positive feature dim %d", dim)
	}
	model := &LogisticRegression{W: make([]float32, dim)}
	if cfg.Standardize {
		st := newStandardizer(dim)
		for i := range rows {
			x, _, err := extract(&rows[i])
			if err != nil {
				return nil, err
			}
			if len(x) != dim {
				return nil, fmt.Errorf("ml: row %d has %d features, want %d", rows[i].ID, len(x), dim)
			}
			st.add(x)
		}
		if st.n == 0 {
			return nil, fmt.Errorf("ml: no training rows")
		}
		model.Mu, model.Sigma = st.finalize()
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		grad := make([]float64, dim)
		var gradB float64
		var count int64
		for i := range rows {
			x, y, err := extract(&rows[i])
			if err != nil {
				return nil, err
			}
			if len(x) != dim {
				return nil, fmt.Errorf("ml: row %d has %d features, want %d", rows[i].ID, len(x), dim)
			}
			diff := float64(model.Predict(x)) - float64(y)
			for j, xv := range x {
				grad[j] += diff * model.scaled(j, xv)
			}
			gradB += diff
			count++
		}
		if count == 0 {
			return nil, fmt.Errorf("ml: no training rows")
		}
		inv := 1 / float64(count)
		for j := range model.W {
			w := float64(model.W[j])
			g := grad[j]*inv + cfg.Lambda*(cfg.Alpha*sign(w)+(1-cfg.Alpha)*w)
			model.W[j] = float32(w - cfg.LearningRate*g)
		}
		model.B = float32(float64(model.B) - cfg.LearningRate*gradB*inv)
	}
	return model, nil
}
