package ml

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file persists trained downstream models — the "model artifacts" the
// Vista API hands back to users (Section 3.3). Models serialize to a JSON
// envelope with a kind tag so a single Load call restores any of them.

// modelKind tags the serialized envelope.
type modelKind string

const (
	kindLogReg modelKind = "logistic-regression"
	kindTree   modelKind = "decision-tree"
	kindMLP    modelKind = "mlp"
)

// envelope is the on-disk format.
type envelope struct {
	Kind    modelKind       `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// treeNodeJSON mirrors treeNode for serialization.
type treeNodeJSON struct {
	Leaf      bool          `json:"leaf"`
	Prob      float32       `json:"prob,omitempty"`
	Feature   int           `json:"feature,omitempty"`
	Threshold float32       `json:"threshold,omitempty"`
	Left      *treeNodeJSON `json:"left,omitempty"`
	Right     *treeNodeJSON `json:"right,omitempty"`
}

func toJSONNode(n *treeNode) *treeNodeJSON {
	if n == nil {
		return nil
	}
	return &treeNodeJSON{
		Leaf: n.leaf, Prob: n.prob,
		Feature: n.feature, Threshold: n.threshold,
		Left: toJSONNode(n.left), Right: toJSONNode(n.right),
	}
}

func fromJSONNode(n *treeNodeJSON) *treeNode {
	if n == nil {
		return nil
	}
	return &treeNode{
		leaf: n.Leaf, prob: n.Prob,
		feature: n.Feature, threshold: n.Threshold,
		left: fromJSONNode(n.Left), right: fromJSONNode(n.Right),
	}
}

type treeJSON struct {
	Dim  int           `json:"dim"`
	Root *treeNodeJSON `json:"root"`
}

type mlpJSON struct {
	Dims    []int       `json:"dims"`
	Weights [][]float32 `json:"weights"`
	Biases  [][]float32 `json:"biases"`
}

// Marshal serializes a trained model.
func Marshal(m Model) ([]byte, error) {
	var env envelope
	var payload any
	switch v := m.(type) {
	case *LogisticRegression:
		env.Kind = kindLogReg
		payload = v
	case *DecisionTree:
		env.Kind = kindTree
		payload = treeJSON{Dim: v.Dim, Root: toJSONNode(v.root)}
	case *MLP:
		env.Kind = kindMLP
		payload = mlpJSON{Dims: v.dims, Weights: v.weights, Biases: v.biases}
	default:
		return nil, fmt.Errorf("ml: cannot serialize model type %T", m)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("ml: marshal: %w", err)
	}
	env.Payload = raw
	return json.Marshal(env)
}

// Unmarshal restores a model serialized by Marshal.
func Unmarshal(blob []byte) (Model, error) {
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("ml: unmarshal: %w", err)
	}
	switch env.Kind {
	case kindLogReg:
		var m LogisticRegression
		if err := json.Unmarshal(env.Payload, &m); err != nil {
			return nil, fmt.Errorf("ml: unmarshal logreg: %w", err)
		}
		if m.W == nil {
			return nil, fmt.Errorf("ml: unmarshal logreg: no weights")
		}
		if (m.Mu == nil) != (m.Sigma == nil) || len(m.Mu) != len(m.Sigma) {
			return nil, fmt.Errorf("ml: unmarshal logreg: inconsistent standardization params")
		}
		return &m, nil
	case kindTree:
		var t treeJSON
		if err := json.Unmarshal(env.Payload, &t); err != nil {
			return nil, fmt.Errorf("ml: unmarshal tree: %w", err)
		}
		if t.Root == nil {
			return nil, fmt.Errorf("ml: unmarshal tree: no root")
		}
		return &DecisionTree{Dim: t.Dim, root: fromJSONNode(t.Root)}, nil
	case kindMLP:
		var p mlpJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, fmt.Errorf("ml: unmarshal mlp: %w", err)
		}
		if len(p.Dims) < 2 || len(p.Weights) != len(p.Dims)-1 || len(p.Biases) != len(p.Dims)-1 {
			return nil, fmt.Errorf("ml: unmarshal mlp: inconsistent layer shapes")
		}
		for l := 0; l+1 < len(p.Dims); l++ {
			if len(p.Weights[l]) != p.Dims[l]*p.Dims[l+1] || len(p.Biases[l]) != p.Dims[l+1] {
				return nil, fmt.Errorf("ml: unmarshal mlp: layer %d shape mismatch", l)
			}
		}
		return &MLP{dims: p.Dims, weights: p.Weights, biases: p.Biases}, nil
	}
	return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
}

// SaveModel writes a model artifact to path.
func SaveModel(path string, m Model) error {
	blob, err := Marshal(m)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("ml: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model artifact from path.
func LoadModel(path string) (Model, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ml: load model: %w", err)
	}
	return Unmarshal(blob)
}
