package ml

import (
	"errors"
	"fmt"

	"repro/internal/dataflow"
)

// FeatureFunc assembles one training example from a row: the feature vector
// x and the binary label y ∈ {0, 1}.
type FeatureFunc func(r *dataflow.Row) (x []float32, y float32, err error)

// ErrNoFeatures indicates a row without the expected materialized features.
var ErrNoFeatures = errors.New("ml: row lacks requested feature tensor")

// StructuredOnly uses only the structured features X.
func StructuredOnly() FeatureFunc {
	return func(r *dataflow.Row) ([]float32, float32, error) {
		return r.Structured, r.Label, nil
	}
}

// StructuredPlusFeature concatenates X with the feature vector at the given
// TensorList index — the workload's X'_l ≡ [X, g_l(f̂_l(I))] (Section 3.2).
func StructuredPlusFeature(idx int) FeatureFunc {
	return func(r *dataflow.Row) ([]float32, float32, error) {
		if r.Features == nil || r.Features.Len() <= idx {
			return nil, 0, fmt.Errorf("%w: index %d", ErrNoFeatures, idx)
		}
		f := r.Features.Get(idx)
		if len(f.Shape()) != 1 {
			return nil, 0, fmt.Errorf("ml: feature tensor at %d has rank %d, want 1", idx, len(f.Shape()))
		}
		x := make([]float32, 0, len(r.Structured)+f.NumElements())
		x = append(x, r.Structured...)
		x = append(x, f.Data()...)
		return x, r.Label, nil
	}
}

// StructuredPlusConcat concatenates X with several feature vectors — the
// multi-layer feature aggregation the paper's Section 5.4 discusses for
// BERT-style models ("aggregating features from multiple decoder layers
// using concatenation").
func StructuredPlusConcat(indices ...int) FeatureFunc {
	return func(r *dataflow.Row) ([]float32, float32, error) {
		total := len(r.Structured)
		for _, idx := range indices {
			if r.Features == nil || r.Features.Len() <= idx {
				return nil, 0, fmt.Errorf("%w: index %d", ErrNoFeatures, idx)
			}
			f := r.Features.Get(idx)
			if len(f.Shape()) != 1 {
				return nil, 0, fmt.Errorf("ml: feature tensor at %d has rank %d, want 1", idx, len(f.Shape()))
			}
			total += f.NumElements()
		}
		x := make([]float32, 0, total)
		x = append(x, r.Structured...)
		for _, idx := range indices {
			x = append(x, r.Features.Get(idx).Data()...)
		}
		return x, r.Label, nil
	}
}

// FeatureOnly uses only the image-feature vector at the given index.
func FeatureOnly(idx int) FeatureFunc {
	return func(r *dataflow.Row) ([]float32, float32, error) {
		if r.Features == nil || r.Features.Len() <= idx {
			return nil, 0, fmt.Errorf("%w: index %d", ErrNoFeatures, idx)
		}
		return r.Features.Get(idx).Data(), r.Label, nil
	}
}

// Model scores feature vectors; for binary classifiers the score is the
// positive-class probability.
type Model interface {
	Predict(x []float32) float32
}

// Predictions applies a model with a 0.5 threshold.
func classify(m Model, x []float32) bool { return m.Predict(x) >= 0.5 }

// Metrics summarizes binary-classification quality.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	N         int
}

// Evaluate scores a model over rows using extract, returning standard binary
// metrics. Rows failing extraction propagate the error.
func Evaluate(m Model, rows []dataflow.Row, extract FeatureFunc) (Metrics, error) {
	var tp, fp, tn, fn int
	for i := range rows {
		x, y, err := extract(&rows[i])
		if err != nil {
			return Metrics{}, err
		}
		pred := classify(m, x)
		actual := y >= 0.5
		switch {
		case pred && actual:
			tp++
		case pred && !actual:
			fp++
		case !pred && !actual:
			tn++
		default:
			fn++
		}
	}
	met := Metrics{N: tp + fp + tn + fn}
	if met.N == 0 {
		return met, nil
	}
	met.Accuracy = float64(tp+tn) / float64(met.N)
	if tp+fp > 0 {
		met.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		met.Recall = float64(tp) / float64(tp+fn)
	}
	if met.Precision+met.Recall > 0 {
		met.F1 = 2 * met.Precision * met.Recall / (met.Precision + met.Recall)
	}
	return met, nil
}

// IsTestID reports whether a row belongs to the held-out test split for the
// given fraction, by a stable hash of its ID.
func IsTestID(id int64, testFraction float64) bool {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return float64(h%1000)/1000.0 < testFraction
}

// SplitByID deterministically partitions rows into train and test sets by
// hashing IDs; testFraction of rows land in test. The split is stable across
// runs and independent of row order.
func SplitByID(rows []dataflow.Row, testFraction float64) (train, test []dataflow.Row) {
	for i := range rows {
		if IsTestID(rows[i].ID, testFraction) {
			test = append(test, rows[i])
		} else {
			train = append(train, rows[i])
		}
	}
	return train, test
}
