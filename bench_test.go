// Package repro's root-level benchmarks regenerate every table and figure of
// the paper's evaluation (one benchmark per exhibit) and report the headline
// quantities as custom metrics. Run them all with:
//
//	go test -bench=. -benchmem
//
// The cluster-scale figures run on the calibrated analytical simulator
// (fast); Figure 8 and Figure 15 execute for real on the dataflow engine
// with the Tiny CNNs, so their benchmarks use reduced row counts.
package repro

import (
	"testing"

	"repro/internal/experiments"
)

func BenchmarkFigure6EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			vista := res.Find("spark", "foods", "resnet50", "Vista")
			lazy1 := res.Find("spark", "foods", "resnet50", "Lazy-1")
			b.ReportMetric(vista.TotalMin(), "vista-min")
			b.ReportMetric(100*(1-vista.TotalMin()/lazy1.TotalMin()), "gain-vs-lazy1-%")
			crashes := 0
			for _, c := range res.Cells {
				if c.Crashed() {
					crashes++
				}
			}
			b.ReportMetric(float64(crashes), "baseline-crashes")
		}
	}
}

func BenchmarkFigure7AGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7A()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if c := res.Find("resnet50", "Vista"); c != nil {
				b.ReportMetric(c.TotalMin(), "vista-resnet-min")
			}
		}
	}
}

func BenchmarkFigure7BTFTBeam(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7B()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Points[len(res.Points)-1]
			b.ReportMetric(last.TFTBeamMin/last.VistaMin, "tft-vs-vista-at-5L")
		}
	}
}

func BenchmarkFigure8Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(experiments.Figure8Options{Rows: 400})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := res.Panels[0]
			b.ReportMetric(p.Entry("struct").F1*100, "struct-f1-%")
			b.ReportMetric(p.Best().F1*100, "best-cnn-f1-%")
		}
	}
}

func BenchmarkFigure9LogicalPlans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			eager := sweeps[3].Get("8X", "Eager/AJ")
			staged := sweeps[3].Get("8X", "Staged/AJ")
			if eager.Crash == nil && staged.Crash == nil {
				b.ReportMetric(eager.TotalMin()/staged.TotalMin(), "eager-vs-staged-8X")
			}
		}
	}
}

func BenchmarkFigure10PhysicalPlans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Configuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Picked["resnet50"].CPU), "picked-cpu-resnet50")
			b.ReportMetric(float64(res.Picked["resnet50"].NP), "picked-np-resnet50")
		}
	}
}

func BenchmarkFigure12Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Speedup["vgg16"][3], "vgg16-8node-speedup")
			b.ReportMetric(res.Speedup["alexnet"][3], "alexnet-8node-speedup")
		}
	}
}

func BenchmarkFigure15SizeEstimates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure15(150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := res.Rows[0]
			b.ReportMetric(float64(row.EstimateBytes)/float64(row.ActualDeserBytes), "estimate-margin")
		}
	}
}

func BenchmarkFigure16PreMaterialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := res.Series[0].Points[0]
			b.ReportMetric(p.WithPreMatMin/p.WithoutPreMatMin, "premat-ratio")
		}
	}
}

func BenchmarkTable2LayerSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Model == "resnet50" {
					b.ReportMetric(row.SizesGB["5th"], "resnet50-5th-GB")
				}
			}
		}
	}
}

func BenchmarkTable3Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Breakdown["resnet50"][8].TotalMin, "resnet50-8node-min")
			b.ReportMetric(res.Breakdown["resnet50"][1].TotalMin, "resnet50-1node-min")
		}
	}
}

func BenchmarkFigure17SpeedupDrilldown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure17()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ReadSpeedup["alexnet"][3], "read-8node-speedup")
		}
	}
}
