// Ablation benchmarks for the design choices DESIGN.md calls out: each
// switches off one Vista mechanism and reports the cost, quantifying how
// much every piece of the system contributes.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dataflow"
	"repro/internal/featurestore"
	"repro/internal/memory"
	"repro/internal/plan"
	"repro/internal/sim"
)

// BenchmarkAblationStagedVsLazy quantifies the computational-redundancy
// savings of the Staged plan (Section 4.2.1) on the simulator at paper
// scale.
func BenchmarkAblationStagedVsLazy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var mins [2]float64
		for j, kind := range []plan.Kind{plan.Staged, plan.Lazy} {
			w, err := sim.NewWorkload(sim.WorkloadSpec{
				ModelName: "resnet50", NumLayers: 5, Dataset: sim.FoodsSpec(),
				PlanKind: kind, Placement: plan.AfterJoin,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg, err := sim.VistaConfig(w)
			if err != nil {
				b.Fatal(err)
			}
			r := sim.Run(w, cfg, sim.PaperCluster())
			if r.Crash != nil {
				b.Fatal(r.Crash)
			}
			mins[j] = r.TotalMin()
		}
		if i == 0 {
			b.ReportMetric(mins[1]/mins[0], "lazy-vs-staged")
		}
	}
}

// BenchmarkAblationAutoTuning quantifies the optimizer's value: the same
// Staged plan under Vista's decision vs. the naive SQL-era baseline config.
func BenchmarkAblationAutoTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := sim.NewWorkload(sim.WorkloadSpec{
			ModelName: "resnet50", NumLayers: 5, Dataset: sim.AmazonSpec(),
			PlanKind: plan.Staged, Placement: plan.AfterJoin,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := sim.VistaConfig(w)
		if err != nil {
			b.Fatal(err)
		}
		tuned := sim.Run(w, cfg, sim.PaperCluster())
		naive := sim.Run(w, sim.BaselineSpark(5), sim.PaperCluster())
		if i == 0 {
			if tuned.Crash != nil {
				b.Fatal(tuned.Crash)
			}
			b.ReportMetric(tuned.TotalMin(), "tuned-min")
			if naive.Crash != nil {
				b.ReportMetric(1, "naive-crashed")
			} else {
				b.ReportMetric(naive.TotalMin(), "naive-min")
			}
		}
	}
}

// BenchmarkAblationSerializedFormat quantifies the serialized persistence
// format's spill reduction at 8X scale (Section 4.2.3).
func BenchmarkAblationSerializedFormat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := sim.NewWorkload(sim.WorkloadSpec{
			ModelName: "resnet50", NumLayers: 5, Dataset: sim.FoodsSpec().Scale(8),
			PlanKind: plan.Staged, Placement: plan.AfterJoin,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := sim.VistaConfig(w)
		if err != nil {
			b.Fatal(err)
		}
		cfgD, cfgS := cfg, cfg
		cfgD.Pers = dataflow.Deserialized
		cfgS.Pers = dataflow.Serialized
		rd := sim.Run(w, cfgD, sim.PaperCluster())
		rs := sim.Run(w, cfgS, sim.PaperCluster())
		if i == 0 && rd.Crash == nil && rs.Crash == nil {
			b.ReportMetric(float64(rd.SpilledBytes)/(1<<30), "deser-spill-GB")
			b.ReportMetric(float64(rs.SpilledBytes)/(1<<30), "ser-spill-GB")
		}
	}
}

// BenchmarkAblationFeatureStore measures — on the real engine, via the
// dataflow FLOP counters — what the materialized feature store saves: a cold
// run pays full partial-CNN inference, the warm repeat of the same workload
// attaches every stage from the store and executes zero CNN FLOPs.
func BenchmarkAblationFeatureStore(b *testing.B) {
	spec := data.Foods().WithRows(300)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	run := func(store *featurestore.Store) *core.Result {
		res, err := core.Run(core.Spec{
			Nodes: 2, CoresPerNode: 2, MemPerNode: memory.GB(32),
			SystemKind: memory.SparkLike,
			ModelName:  "tiny-alexnet", NumLayers: 2,
			Downstream: core.DefaultDownstream(),
			StructRows: structRows, ImageRows: imageRows,
			Seed: 9, FeatureStore: store,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := featurestore.Open(b.TempDir(), memory.MB(256))
		if err != nil {
			b.Fatal(err)
		}
		cold := run(store)
		warm := run(store)
		if warm.Cache.StagesExecuted != 0 {
			b.Fatalf("warm run executed %d stages live", warm.Cache.StagesExecuted)
		}
		if i == 0 {
			b.ReportMetric(float64(cold.Counters.FLOPs)/1e9, "cold-GFLOPs")
			b.ReportMetric(float64(warm.Counters.FLOPs)/1e9, "warm-GFLOPs")
			b.ReportMetric(cold.TimingFor("infer:").Seconds(), "cold-infer-sec")
			b.ReportMetric(warm.TimingFor("cache:").Seconds(), "warm-attach-sec")
		}
		store.Close()
	}
}

// BenchmarkAblationJoinPlacement measures — on the real engine — how much
// data the BJ placement shuffles versus AJ (Section 4.2.1's join-reordering
// argument: feature layers outweigh raw images).
func BenchmarkAblationJoinPlacement(b *testing.B) {
	spec := data.Foods().WithRows(300)
	structRows, imageRows, err := data.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	run := func(placement plan.JoinPlacement) dataflow.Snapshot {
		res, err := core.Run(core.Spec{
			Nodes: 2, CoresPerNode: 2, MemPerNode: memory.GB(32),
			SystemKind: memory.SparkLike,
			ModelName:  "tiny-alexnet", NumLayers: 2,
			Downstream: core.DefaultDownstream(),
			StructRows: structRows, ImageRows: imageRows,
			Seed: 9, PlanKind: plan.Staged, Placement: placement,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Counters
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aj := run(plan.AfterJoin)
		bj := run(plan.BeforeJoin)
		if i == 0 {
			b.ReportMetric(float64(aj.BytesShuffled+aj.BytesBroadcast)/(1<<20), "aj-moved-MB")
			b.ReportMetric(float64(bj.BytesShuffled+bj.BytesBroadcast)/(1<<20), "bj-moved-MB")
		}
	}
}
