#!/usr/bin/env bash
# Runs the repository's Go benchmarks and emits one JSON document of results
# (ns/op, B/op, allocs/op per benchmark), for tracking performance across PRs.
#
# Usage:
#   scripts/bench.sh output.json             # explicit output file (required)
#   BENCH_SHORT=1 scripts/bench.sh out.json  # smoke mode: -short -benchtime 1x
#   BENCH_FORCE=1 scripts/bench.sh BENCH_N.json  # allow overwriting a snapshot
#
# An in-tree BENCH_N.json snapshot is the committed perf record of PR N, so
# the output name must be explicit and an existing snapshot is never silently
# clobbered: overwriting one requires BENCH_FORCE=1.
#
# Covers the root figure/ablation benchmarks plus the hot internal packages.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 || -z "${1:-}" ]]; then
    latest=$(ls BENCH_*.json 2>/dev/null | sed 's/[^0-9]*//g' | sort -n | tail -1)
    next="BENCH_$(( ${latest:-0} + 1 )).json"
    echo "usage: scripts/bench.sh <output.json>" >&2
    echo "refusing to guess an output name; the next snapshot would be $next" >&2
    exit 2
fi
out="$1"
if [[ "$(basename "$out")" =~ ^BENCH_[0-9]+\.json$ && -e "$out" && "${BENCH_FORCE:-0}" != "1" ]]; then
    echo "refusing to overwrite existing snapshot $out (set BENCH_FORCE=1 to override)" >&2
    exit 2
fi
pkgs=(. ./internal/dataflow ./internal/ml ./internal/cnn ./internal/tensor)

args=(-run '^$' -bench . -benchmem)
if [[ "${BENCH_SHORT:-0}" == "1" ]]; then
    args+=(-short -benchtime 1x)
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for pkg in "${pkgs[@]}"; do
    echo "== go test -bench $pkg ==" >&2
    go test "${args[@]}" "$pkg" | tee -a "$raw" >&2
done

# Parse "BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op" lines into JSON.
awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print ""; print "  ]"; print "}" }
' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
echo "wrote $count benchmark results to $out" >&2
