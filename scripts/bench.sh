#!/usr/bin/env bash
# Runs the repository's Go benchmarks and emits one JSON document of results
# (ns/op, B/op, allocs/op per benchmark), for tracking performance across PRs.
#
# Usage:
#   scripts/bench.sh [output.json]       # default output: BENCH_2.json
#   BENCH_SHORT=1 scripts/bench.sh       # smoke mode: -short -benchtime 1x
#
# Covers the root figure/ablation benchmarks plus the hot internal packages.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_2.json}"
pkgs=(. ./internal/dataflow ./internal/ml ./internal/cnn ./internal/tensor)

args=(-run '^$' -bench . -benchmem)
if [[ "${BENCH_SHORT:-0}" == "1" ]]; then
    args+=(-short -benchtime 1x)
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for pkg in "${pkgs[@]}"; do
    echo "== go test -bench $pkg ==" >&2
    go test "${args[@]}" "$pkg" | tee -a "$raw" >&2
done

# Parse "BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op" lines into JSON.
awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print ""; print "  ]"; print "}" }
' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
echo "wrote $count benchmark results to $out" >&2
