// Command tracecheck validates the CLI's observability exports in CI: the
// Chrome trace file must decode as trace-event JSON with a non-empty
// traceEvents array containing complete ("X") span events, and the sampled
// time-series CSV must carry the expected header and monotonically
// non-decreasing unix_ns timestamps.
//
// Usage:
//
//	go run ./scripts/tracecheck -trace /tmp/t.json -timeseries /tmp/s.csv
//
// Either flag may be omitted; tracecheck validates what it is given and exits
// non-zero on the first violation.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	seriesPath := flag.String("timeseries", "", "time-series CSV file to validate")
	flag.Parse()

	if *tracePath == "" && *seriesPath == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: nothing to check (pass -trace and/or -timeseries)")
		os.Exit(2)
	}
	if *tracePath != "" {
		if err := checkTrace(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		fmt.Printf("trace ok: %s\n", *tracePath)
	}
	if *seriesPath != "" {
		if err := checkTimeseriesCSV(*seriesPath); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		fmt.Printf("timeseries ok: %s\n", *seriesPath)
	}
}

func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: traceEvents is empty", path)
	}
	var spans int
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return fmt.Errorf("%s: event %d (%s) has negative ts/dur", path, i, ev.Name)
		}
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: no complete (X) span events", path)
	}
	return nil
}

func checkTimeseriesCSV(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("%s: no CSV header: %w", path, err)
	}
	if len(header) < 2 || header[0] != "unix_ns" || header[1] != "stage" {
		return fmt.Errorf("%s: bad header %v, want [unix_ns stage ...]", path, header)
	}
	var prev int64
	var rows int
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		rows++
		ns, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return fmt.Errorf("%s: row %d: bad unix_ns %q", path, rows, rec[0])
		}
		if ns < prev {
			return fmt.Errorf("%s: row %d: timestamps not monotone (%d < %d)", path, rows, ns, prev)
		}
		prev = ns
	}
	if rows < 2 {
		return fmt.Errorf("%s: %d data rows, want >= 2 (initial + final sample)", path, rows)
	}
	return nil
}
