// Command serversmoke is the CI concurrency gate for vista-server: it boots
// a real server binary with an admission budget sized for about two
// concurrent runs, floods it with parallel POST /run requests, and asserts
// the admission contract end to end:
//
//   - every response is 200, 429 (with Retry-After), or 503 — never a crash
//     or an engine OOM surfacing as a 5xx;
//   - the admission counters scraped from /metrics reconcile exactly with
//     the observed responses;
//   - in-flight bytes and queue depth drain to zero once the flood ends;
//   - SIGTERM produces a clean exit.
//
// A second phase reboots the server with -share and floods it with identical
// requests, asserting the shared-inference contract: every admitted run takes
// exactly one sharing role (leader + follower + solo == admitted), followers
// deduplicated real modeled FLOPs, and the coordinator gauges drain to zero.
//
// Usage: go run ./scripts/serversmoke -server /path/to/vista-server
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/memory"
)

const (
	rows     = 60
	layers   = 2
	parallel = 12

	// runTimeout bounds one /run request end to end. The bare http.Post
	// default client has no timeout at all, so a wedged server used to hang
	// the smoke until CI killed the whole job with no diagnosis.
	runTimeout = 2 * time.Minute
	// ctlTimeout bounds control-plane requests (/healthz, /metrics).
	ctlTimeout = 5 * time.Second
)

var (
	runClient = &http.Client{Timeout: runTimeout}
	ctlClient = &http.Client{Timeout: ctlTimeout}
)

// Pseudo-status keys for non-HTTP outcomes in a codes map. Timeouts and
// transport failures are distinct verdicts: a timeout is a server that is
// too slow (or deadlocked) but still holding the socket, a transport error
// is one that stopped answering entirely.
const (
	codeTransport    = -1
	codeNoRetryAfter = -2
	codeTimeout      = -3
)

// flood posts n identical /run bodies concurrently and classifies every
// outcome exactly once: an HTTP status, codeTimeout, codeTransport, or
// codeNoRetryAfter (a 429 missing its backoff hint).
func flood(base, body string, n int) map[int]int {
	var mu sync.Mutex
	codes := map[int]int{}
	record := func(code int) { mu.Lock(); codes[code]++; mu.Unlock() }
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			resp, err := runClient.Post(base+"/run", "application/json", strings.NewReader(body))
			if err != nil {
				if isTimeout(err) {
					record(codeTimeout)
				} else {
					record(codeTransport)
				}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				record(codeNoRetryAfter)
				return
			}
			record(resp.StatusCode)
		}()
	}
	wg.Wait()
	return codes
}

// isTimeout reports whether err is a client-side timeout rather than a
// refused/reset connection.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func main() {
	server := flag.String("server", "", "path to the vista-server binary")
	flag.Parse()
	if *server == "" {
		fatal("missing -server")
	}
	if err := smoke(*server); err != nil {
		fatal(err.Error())
	}
	if err := shareSmoke(*server); err != nil {
		fatal(err.Error())
	}
	fmt.Println("serversmoke: OK")
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "serversmoke:", msg)
	os.Exit(1)
}

// price computes the admission cost of one smoke /run exactly as the server
// will: same dataset, model, and environment defaults.
func price() (int64, error) {
	structRows, imageRows, err := data.Generate(data.Foods().WithRows(rows))
	if err != nil {
		return 0, err
	}
	return core.Price(core.Spec{
		Nodes: 2, CoresPerNode: 4,
		MemPerNode: memory.GB(32),
		SystemKind: memory.SparkLike,
		ModelName:  "tiny-alexnet", NumLayers: layers,
		Downstream: core.DefaultDownstream(),
		StructRows: structRows, ImageRows: imageRows,
		Seed: 7,
	})
}

// freePort grabs an ephemeral port. Closing before the server binds leaves
// a tiny race, acceptable in CI.
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func smoke(server string) error {
	cost, err := price()
	if err != nil {
		return fmt.Errorf("price: %w", err)
	}
	budgetMiB := (2*cost + (1 << 20) - 1) >> 20 // ceil to MiB, fits ~2 runs
	addr, err := freePort()
	if err != nil {
		return err
	}

	cmd := exec.Command(server,
		"-addr", addr,
		"-feature-cache-mb", "0",
		"-mem-budget", strconv.FormatInt(budgetMiB, 10),
		"-queue-depth", "4",
		"-queue-timeout", "2s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	if err := waitHealthy(base); err != nil {
		return err
	}

	body := fmt.Sprintf(`{"model":"tiny-alexnet","dataset":"foods","rows":%d,"layers":%d}`, rows, layers)
	codes := flood(base, body, parallel)

	if codes[codeTimeout] > 0 {
		return fmt.Errorf("%d requests timed out after %s", codes[codeTimeout], runTimeout)
	}
	if codes[codeTransport] > 0 {
		return fmt.Errorf("%d requests failed at the transport layer", codes[codeTransport])
	}
	if codes[codeNoRetryAfter] > 0 {
		return fmt.Errorf("%d 429 responses lacked Retry-After", codes[codeNoRetryAfter])
	}
	for code, n := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			return fmt.Errorf("unexpected status %d (%d times)", code, n)
		}
	}
	if codes[http.StatusOK] == 0 {
		return fmt.Errorf("no /run succeeded (codes: %v)", codes)
	}

	metrics, err := scrape(base)
	if err != nil {
		return err
	}
	checks := []struct {
		series string
		want   float64
	}{
		{`vista_admission_admitted_total`, float64(codes[http.StatusOK])},
		{`vista_admission_rejected_total{reason="deadline"}`, float64(codes[http.StatusTooManyRequests])},
		{`vista_admission_rejected_total{reason="queue_full"}`, float64(codes[http.StatusServiceUnavailable])},
		{`vista_admission_inflight_bytes`, 0},
		{`vista_admission_inflight_runs`, 0},
		{`vista_admission_queue_depth`, 0},
		{`vista_admission_cancelled_total`, 0},
	}
	for _, c := range checks {
		got, ok := metrics[c.series]
		if !ok {
			return fmt.Errorf("metric %s missing from /metrics", c.series)
		}
		if got != c.want {
			return fmt.Errorf("%s = %v, want %v (responses: %v)", c.series, got, c.want, codes)
		}
	}

	// Clean drain on shutdown.
	if err := stopServer(cmd); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serversmoke: %d requests -> %v (budget %d MiB)\n", parallel, codes, budgetMiB)
	return nil
}

// shareSmoke is the second phase: the same binary rebooted with -share and a
// budget that fits the whole flood, hit with identical requests that must
// coalesce into one sharing group.
func shareSmoke(server string) error {
	cost, err := price()
	if err != nil {
		return fmt.Errorf("price: %w", err)
	}
	budgetMiB := (int64(parallel)*cost + (1 << 20) - 1) >> 20 // everything admits
	addr, err := freePort()
	if err != nil {
		return err
	}

	cmd := exec.Command(server,
		"-addr", addr,
		"-feature-cache-mb", "0",
		"-mem-budget", strconv.FormatInt(budgetMiB, 10),
		"-queue-depth", strconv.Itoa(parallel),
		"-queue-timeout", "30s",
		"-share",
		"-share-window", "500ms",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	if err := waitHealthy(base); err != nil {
		return err
	}

	body := fmt.Sprintf(`{"model":"tiny-alexnet","dataset":"foods","rows":%d,"layers":%d}`, rows, layers)
	codes := flood(base, body, parallel)

	if codes[codeTimeout] > 0 {
		return fmt.Errorf("share: %d requests timed out after %s", codes[codeTimeout], runTimeout)
	}
	if codes[codeTransport] > 0 {
		return fmt.Errorf("share: %d requests failed at the transport layer", codes[codeTransport])
	}
	if codes[http.StatusOK] != parallel {
		return fmt.Errorf("share: %d/%d requests succeeded (codes: %v)", codes[http.StatusOK], parallel, codes)
	}

	metrics, err := scrape(base)
	if err != nil {
		return err
	}
	admitted := metrics["vista_admission_admitted_total"]
	roles := metrics[`vista_share_runs_total{role="leader"}`] +
		metrics[`vista_share_runs_total{role="follower"}`] +
		metrics[`vista_share_runs_total{role="solo"}`]
	if roles != admitted {
		return fmt.Errorf("share: roles sum to %v, admitted %v — a run escaped the exactly-one-outcome invariant", roles, admitted)
	}
	if metrics[`vista_share_runs_total{role="follower"}`] == 0 {
		return fmt.Errorf("share: identical flood produced no followers (metrics: leader=%v solo=%v)",
			metrics[`vista_share_runs_total{role="leader"}`], metrics[`vista_share_runs_total{role="solo"}`])
	}
	if metrics["vista_share_dedup_flops_total"] <= 0 {
		return fmt.Errorf("share: dedup FLOPs = %v, want > 0", metrics["vista_share_dedup_flops_total"])
	}
	for _, gauge := range []string{
		"vista_share_open_groups",
		"vista_share_waiting_members",
		"vista_share_live_groups",
		"vista_admission_inflight_bytes",
		"vista_admission_inflight_runs",
	} {
		if v := metrics[gauge]; v != 0 {
			return fmt.Errorf("share: %s = %v after drain, want 0", gauge, v)
		}
	}
	if metrics["vista_share_aborted_total"] != 0 {
		return fmt.Errorf("share: aborted = %v with no failures", metrics["vista_share_aborted_total"])
	}

	if err := stopServer(cmd); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serversmoke: share phase %d identical requests -> leaders=%v followers=%v dedupFLOPs=%v\n",
		parallel,
		metrics[`vista_share_runs_total{role="leader"}`],
		metrics[`vista_share_runs_total{role="follower"}`],
		metrics["vista_share_dedup_flops_total"])
	return nil
}

// stopServer SIGTERMs the server and requires a clean, prompt exit.
func stopServer(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal server: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("server exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("server did not exit within 15s of SIGTERM")
	}
	return nil
}

func waitHealthy(base string) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ctlClient.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server never became healthy at %s", base)
}

// scrape fetches /metrics and parses the flat Prometheus text exposition
// into series -> value ("name" or `name{labels}` keys).
func scrape(base string) (map[string]float64, error) {
	resp, err := ctlClient.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, nil
}
