#!/usr/bin/env bash
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (BENCH_SHORT=1) =="
bench_out=$(mktemp)
BENCH_SHORT=1 scripts/bench.sh "$bench_out"
rm -f "$bench_out"

echo "CI passed."
