#!/usr/bin/env bash
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== package docs =="
go run ./scripts/pkgdoc

echo "== go build =="
go build ./...

echo "== go test -race =="
# The full chaos schedule set is too slow under the race detector; it gets a
# dedicated -short smoke below plus a full non-race run. internal/experiments
# alone runs ~4 min without -race, so the default 10m per-package timeout is
# too tight under the race detector's overhead.
go test -race -timeout 30m $(go list ./... | grep -v '/internal/chaos$')

echo "== go test -race (fault-injection critical packages) =="
# Armed-at-exit is enforced by each package's TestMain: a test that leaves a
# failpoint site armed fails the package even when every test passed.
# internal/tensor and internal/cnn carry the parallel GEMM kernels and slab
# arena; their shared-model concurrency tests must run under -race every time.
go test -race -count=1 ./internal/faultinject/... ./internal/dataflow ./internal/featurestore ./internal/share ./internal/tensor ./internal/cnn

echo "== chaos: -race short smoke =="
go test -race -short -count=1 ./internal/chaos

echo "== chaos: full schedule set =="
go test -count=1 ./internal/chaos

echo "== trace/timeseries export smoke =="
obs_tmp=$(mktemp -d)
go run ./cmd/vista -rows 200 -layers 2 \
    -trace-out "$obs_tmp/trace.json" -timeseries-out "$obs_tmp/series.csv" \
    >"$obs_tmp/stdout.txt" 2>"$obs_tmp/stderr.txt"
go run ./scripts/tracecheck -trace "$obs_tmp/trace.json" -timeseries "$obs_tmp/series.csv"
rm -rf "$obs_tmp"

echo "== server concurrency smoke =="
# Boot a real vista-server with a budget sized for ~2 concurrent runs, flood
# it with parallel /run requests, and assert every response is 200/429/503,
# the admission counters reconcile, and shutdown drains cleanly.
smoke_tmp=$(mktemp -d)
go build -o "$smoke_tmp/vista-server" ./cmd/vista-server
go run ./scripts/serversmoke -server "$smoke_tmp/vista-server"
rm -rf "$smoke_tmp"

echo "== bench smoke (BENCH_SHORT=1) =="
bench_out=$(mktemp)
BENCH_SHORT=1 scripts/bench.sh "$bench_out"
rm -f "$bench_out"

echo "CI passed."
