#!/usr/bin/env bash
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== package docs =="
go run ./scripts/pkgdoc

echo "== go build =="
go build ./...

echo "== go test -race =="
# The full chaos schedule set is too slow under the race detector; it gets a
# dedicated -short smoke below plus a full non-race run. internal/experiments
# alone runs ~4 min without -race, so the default 10m per-package timeout is
# too tight under the race detector's overhead.
go test -race -timeout 30m $(go list ./... | grep -v '/internal/chaos$')

echo "== go test -race (fault-injection critical packages) =="
# Armed-at-exit is enforced by each package's TestMain: a test that leaves a
# failpoint site armed fails the package even when every test passed.
# internal/tensor and internal/cnn carry the parallel GEMM kernels and slab
# arena; their shared-model concurrency tests must run under -race every time.
# internal/workload is the load driver: its open/closed-loop scheduling and
# result bookkeeping are all cross-goroutine, so it races under -race or not
# at all. internal/calib carries the crash-consistent calibration log and the
# aggregates that metrics callbacks read while runs write.
go test -race -count=1 ./internal/faultinject/... ./internal/calib ./internal/dataflow ./internal/featurestore ./internal/share ./internal/tensor ./internal/cnn ./internal/workload

echo "== chaos: -race short smoke =="
go test -race -short -count=1 ./internal/chaos

echo "== chaos: full schedule set =="
go test -count=1 ./internal/chaos

echo "== trace/timeseries export smoke =="
obs_tmp=$(mktemp -d)
go run ./cmd/vista -rows 200 -layers 2 \
    -trace-out "$obs_tmp/trace.json" -timeseries-out "$obs_tmp/series.csv" \
    >"$obs_tmp/stdout.txt" 2>"$obs_tmp/stderr.txt"
go run ./scripts/tracecheck -trace "$obs_tmp/trace.json" -timeseries "$obs_tmp/series.csv"
rm -rf "$obs_tmp"

echo "== server concurrency smoke =="
# Boot a real vista-server with a budget sized for ~2 concurrent runs, flood
# it with parallel /run requests, and assert every response is 200/429/503,
# the admission counters reconcile, and shutdown drains cleanly.
smoke_tmp=$(mktemp -d)
go build -o "$smoke_tmp/vista-server" ./cmd/vista-server
go run ./scripts/serversmoke -server "$smoke_tmp/vista-server"
rm -rf "$smoke_tmp"

echo "== vista-load smoke (compressed overload replay) =="
# Boot a single-slot server (the 60000 MiB budget fits exactly one priced
# tiny-alexnet/foods run — modeled memory, nothing near that is allocated)
# and replay a two-wave overload profile compressed 60x: ~30s of wall clock
# covering a calm baseline, a moderate flood, and a saturating flood.
# vista-load exits nonzero unless every offered request is classified
# exactly once, the server's admission counters reconcile with the observed
# responses, nothing failed at the transport layer, and the 429s carried
# >= 2 distinct Retry-After values — the regression gate for the
# static-hint retry herd.
load_tmp=$(mktemp -d)
load_port=$((20000 + RANDOM % 10000))
go build -o "$load_tmp/vista-server" ./cmd/vista-server
go build -o "$load_tmp/vista-load" ./cmd/vista-load
"$load_tmp/vista-server" -addr "127.0.0.1:$load_port" -feature-cache-mb 0 \
    -mem-budget 60000 -queue-depth 6 -queue-timeout 3s \
    >"$load_tmp/server.log" 2>&1 &
load_server_pid=$!
trap 'kill "$load_server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$load_port") 2>/dev/null; then exec 3>&- 3<&-; break; fi
    sleep 0.2
done
"$load_tmp/vista-load" -url "http://127.0.0.1:$load_port" \
    -profile 'const(1) + flood(4m,3m,25) + flood(16m,8m,45)' \
    -duration 30m -time-scale 60 -tick 2m \
    -min-retry-distinct 2 -max-inflight 1024 \
    -timeline "$load_tmp/timeline.csv" | tee "$load_tmp/summary.txt"
# The herd gate only binds when the run actually throttled; make sure the
# profile produced real signal on this machine rather than passing vacuously.
load_ok=$(sed -n 's/.* ok=\([0-9]*\).*/\1/p' "$load_tmp/summary.txt")
load_throttled=$(sed -n 's/.* throttled=\([0-9]*\).*/\1/p' "$load_tmp/summary.txt")
if [[ -z "$load_ok" || "$load_ok" -eq 0 || -z "$load_throttled" || "$load_throttled" -lt 2 ]]; then
    echo "vista-load smoke produced too little signal (ok=$load_ok throttled=$load_throttled)" >&2
    exit 1
fi
kill "$load_server_pid"
wait "$load_server_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$load_tmp"

echo "== calibration smoke (drift observatory end-to-end) =="
# Boot a log-backed server, drive three real /run requests, and assert the
# drift observatory saw them on every surface: /calibration reports non-empty
# per-stage aggregates, /metrics exports the vista_calib_* series, and the
# offline replay (vista -calib report) reproduces the live JSON byte-for-byte
# from the persisted log — the property that makes the log trustworthy.
calib_tmp=$(mktemp -d)
calib_port=$((20000 + RANDOM % 10000))
go build -o "$calib_tmp/vista-server" ./cmd/vista-server
go build -o "$calib_tmp/vista" ./cmd/vista
"$calib_tmp/vista-server" -addr "127.0.0.1:$calib_port" -feature-cache-mb 0 \
    -calib-log "$calib_tmp/calib.log" -log-format json \
    >"$calib_tmp/server.log" 2>&1 &
calib_server_pid=$!
trap 'kill "$calib_server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$calib_port") 2>/dev/null; then exec 3>&- 3<&-; break; fi
    sleep 0.2
done
for _ in 1 2 3; do
    curl -sf "http://127.0.0.1:$calib_port/run" \
        -d '{"model":"tiny-alexnet","dataset":"foods","layers":2,"rows":100}' >/dev/null
done
curl -sf "http://127.0.0.1:$calib_port/calibration" >"$calib_tmp/live.json"
for kind in ingest join infer train; do
    if ! grep -q "\"kind\":\"$kind\",\"samples\":[1-9]" "$calib_tmp/live.json"; then
        echo "calibration smoke: kind $kind has no samples after 3 runs" >&2
        cat "$calib_tmp/live.json" >&2
        exit 1
    fi
done
# (/metrics lands in a file first: grep -q on a live pipe SIGPIPEs curl,
# which pipefail would then report as a smoke failure.)
curl -sf "http://127.0.0.1:$calib_port/metrics" >"$calib_tmp/metrics.txt"
if ! grep -q '^vista_calib_samples_total{stage="infer"} [1-9]' "$calib_tmp/metrics.txt"; then
    echo "calibration smoke: vista_calib_samples_total missing from /metrics" >&2
    exit 1
fi
kill "$calib_server_pid"
wait "$calib_server_pid" 2>/dev/null || true
trap - EXIT
"$calib_tmp/vista" -calib "$calib_tmp/calib.log" -calib-json report >"$calib_tmp/offline.json"
cmp "$calib_tmp/live.json" "$calib_tmp/offline.json"
rm -rf "$calib_tmp"

echo "== calibration closed-loop smoke (-auto-calibrate) =="
# Boot a deliberately mis-calibrated server (-calib-infer-scale 25) with the
# feedback loop on, and assert the loop end to end: the distortion shows up as
# out-of-band drift, a refit fits and persists a profile (visible on /metrics
# as vista_calib_profile_*), fresh traffic recorded under the profile brings
# every kind's drift ratio back inside [0.5, 2.0], and the offline replay with
# the same half-life and the fitted profile reproduces the live /calibration
# JSON byte-for-byte. Single-layer runs keep each stage kind homogeneous so a
# per-kind factor can fully correct it (see docs/CALIBRATION.md).
loop_tmp=$(mktemp -d)
loop_port=$((20000 + RANDOM % 10000))
go build -o "$loop_tmp/vista-server" ./cmd/vista-server
go build -o "$loop_tmp/vista" ./cmd/vista
"$loop_tmp/vista-server" -addr "127.0.0.1:$loop_port" -feature-cache-mb 0 \
    -calib-log "$loop_tmp/calib.log" -calib-half-life 5s \
    -calib-profile "$loop_tmp/profile.json" -auto-calibrate \
    -calib-refit-interval 2s -calib-infer-scale 25 -log-format json \
    >"$loop_tmp/server.log" 2>&1 &
loop_server_pid=$!
trap 'kill "$loop_server_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$loop_port") 2>/dev/null; then exec 3>&- 3<&-; break; fi
    sleep 0.2
done
loop_run() {
    curl -sf "http://127.0.0.1:$loop_port/run" \
        -d '{"model":"tiny-alexnet","dataset":"foods","layers":1,"rows":100}' >/dev/null
}
# drift_of METRICS_FILE STAGE: pull one stage's vista_calib_drift_ratio.
drift_of() {
    sed -n "s/^vista_calib_drift_ratio{stage=\"$2\"} //p" "$1"
}
# band_ok LIVE_JSON: every evidenced kind's drift_ratio within [0.5, 2.0].
# Kinds whose active scale sits at a clamp bound (0.02 / 50, the
# DefaultFitOptions guardrail) are exempt: the loop has corrected as far as
# the guardrail allows, by design — see docs/CALIBRATION.md on saturation.
band_ok() {
    tr '{' '\n' <"$1" | awk -F'[:,]' '
        /"kind"/ && /"drift_ratio"/ {
            kind = ""; samples = 0; drift = 1; active = 1
            for (i = 1; i < NF; i++) {
                if ($i == "\"kind\"")         { gsub(/"/, "", $(i+1)); kind = $(i+1) }
                if ($i == "\"samples\"")      samples = $(i+1)
                if ($i == "\"drift_ratio\"")  drift = $(i+1)
                if ($i == "\"active_scale\"") active = $(i+1)
            }
            if (active <= 0.02 || active >= 50) next
            if (samples > 0 && (drift < 0.5 || drift > 2.0)) {
                printf "  %s drift %s out of band\n", kind, drift
                bad = 1
            }
        }
        END { exit bad }'
}
for _ in 1 2 3; do loop_run; done
# Probe A: the injected 25x inference inflation deflates the other kinds'
# estimated shares, so train's drift ratio blows out above the band.
curl -sf "http://127.0.0.1:$loop_port/metrics" >"$loop_tmp/metrics_a.txt"
drift_a=$(drift_of "$loop_tmp/metrics_a.txt" train)
if ! awk -v d="$drift_a" 'BEGIN { exit !(d > 2.0) }'; then
    echo "closed-loop smoke: train drift before refit = $drift_a, want > 2.0" >&2
    exit 1
fi
# The refit loop notices within a couple of intervals.
for i in $(seq 1 40); do
    curl -sf "http://127.0.0.1:$loop_port/metrics" >"$loop_tmp/metrics.txt"
    if grep -q '^vista_calib_profile_refits_total [1-9]' "$loop_tmp/metrics.txt"; then break; fi
    if [[ "$i" == 40 ]]; then
        echo "closed-loop smoke: no profile refit after 20s" >&2
        exit 1
    fi
    sleep 0.5
done
if ! grep -q '^vista_calib_profile_scale{stage="train"} ' "$loop_tmp/metrics.txt"; then
    echo "closed-loop smoke: vista_calib_profile_scale missing from /metrics" >&2
    exit 1
fi
[[ -s "$loop_tmp/profile.json" ]] || { echo "closed-loop smoke: profile file not persisted" >&2; exit 1; }
# Convergence rounds: fade the mis-calibrated history (several half-lives),
# drive fresh profile-corrected traffic, give the fitter two intervals to
# consume the residual window, and check the band. Real stage times are noisy
# (join is milliseconds of wall clock), so allow a few corrective rounds.
loop_converged=0
for round in 1 2 3; do
    sleep 12
    for _ in 1 2 3; do loop_run; done
    sleep 5
    curl -sf "http://127.0.0.1:$loop_port/calibration" >"$loop_tmp/live.json"
    if band_ok "$loop_tmp/live.json"; then loop_converged=1; break; fi
    echo "closed-loop smoke: round $round not yet converged"
done
if [[ "$loop_converged" != 1 ]]; then
    echo "closed-loop smoke: drift never converged into [0.5, 2.0]" >&2
    cat "$loop_tmp/live.json" >&2
    exit 1
fi
# Probe B: the same gauge that blew out at probe A is back inside the band.
curl -sf "http://127.0.0.1:$loop_port/metrics" >"$loop_tmp/metrics_b.txt"
drift_b=$(drift_of "$loop_tmp/metrics_b.txt" train)
if ! awk -v a="$drift_a" -v b="$drift_b" \
    'function al(x) { return x < 1 ? -log(x) : log(x) } BEGIN { exit !(al(b) < al(a) && b >= 0.5 && b <= 2.0) }'; then
    echo "closed-loop smoke: train drift did not converge: before=$drift_a after=$drift_b" >&2
    exit 1
fi
kill "$loop_server_pid"
wait "$loop_server_pid" 2>/dev/null || true
trap - EXIT
# Offline replay with the fitted profile active must reproduce the last live
# capture byte-for-byte: same log, same half-life, same profile file. (The
# capture above waited out two idle refit intervals, so the profile is stable.)
"$loop_tmp/vista" -calib "$loop_tmp/calib.log" -calib-half-life 5s \
    -calib-profile "$loop_tmp/profile.json" -calib-json report >"$loop_tmp/offline.json"
cmp "$loop_tmp/live.json" "$loop_tmp/offline.json"
rm -rf "$loop_tmp"

echo "== calibration convergence exhibit (admission flip) =="
# The graded scenario suite must converge, and the fitted profile must flip a
# real admission verdict: the exhibit errors out if any scenario fails to
# converge, and the flip line is asserted literally.
exhibit_tmp=$(mktemp)
go run ./cmd/vista-bench -only calib | tee "$exhibit_tmp"
grep -q -- '-> reject, fitted .* -> admit' "$exhibit_tmp" || {
    echo "calibration exhibit: admission verdict did not flip" >&2
    exit 1
}
rm -f "$exhibit_tmp"

echo "== bench smoke (BENCH_SHORT=1) =="
bench_out=$(mktemp)
BENCH_SHORT=1 scripts/bench.sh "$bench_out"
rm -f "$bench_out"

echo "CI passed."
