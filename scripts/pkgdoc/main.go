// Command pkgdoc lints package documentation: every non-test package under
// the given roots (default: internal/ and cmd/) must carry a package
// comment. CI runs it via scripts/ci.sh and fails the build on offenders,
// so new packages cannot land undocumented.
//
// A package passes when any of its non-test .go files has a doc comment
// attached to the package clause. Usage:
//
//	go run ./scripts/pkgdoc [roots...]
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	// documented[dir] records whether any non-test file in dir carries a
	// package comment; present-but-false means the package has files and
	// no doc.
	documented := map[string]bool{}
	fset := token.NewFileSet()
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			dir := filepath.Dir(path)
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented[dir] = true
			} else if _, seen := documented[dir]; !seen {
				documented[dir] = false
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pkgdoc:", err)
			os.Exit(1)
		}
	}
	var missing []string
	for dir, ok := range documented {
		if !ok {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "pkgdoc: packages without a package comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Printf("pkgdoc: %d packages documented\n", len(documented))
}
